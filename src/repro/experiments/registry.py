"""Graph-family registry, solver registry, and the named scenario suites.

Three registries turn a :class:`~repro.experiments.spec.ScenarioSpec` into an
executable trial:

* ``GRAPH_FAMILIES`` — ``name -> builder(seed, **family_params)`` returning
  ``(graph, truth)``; ``truth`` carries planted ground-truth structure
  (clique membership, triangle-rich edges) for scoring, or ``None``.
* ``SOLVERS`` — ``name -> solver(spec, graph, truth, seed)`` returning a flat
  metrics dict for one trial.  All coloring solvers share the same metric
  schema so suites can be aggregated and diffed uniformly.  Every solver also
  accepts an optional ``tracer=`` keyword (a
  :class:`~repro.obs.tracer.RoundTracer`) attached to the trial's network —
  tracing is observation-only, so trial metrics are byte-identical either
  way; the runner owns the tracer's lifecycle.
* ``SUITES`` — the named scenario collections the CLI exposes
  (``smoke``, ``coloring``, ``bandwidth``, ``detection``, ``scaling``,
  ``scale``, ``robustness``, ``massive``).  The suites absorb the workloads of the
  historical ``bench_e*`` scripts — scenarios tagged
  ``e09``/``e11``/``e12``/``e16`` are the exact points those benchmarks now
  resolve via :func:`get_suite`.  ``scale`` is the large-n workload
  (n = 2 000 / 10 000 / 50 000) unlocked by the slot transport and the
  slot-indexed simulation core; it runs single trials on the ``counters``
  ledger so wall-clock and memory stay bounded.  ``robustness`` sweeps the
  fault-intensity axis (:mod:`repro.faults`): drop/corruption rates, node
  crashes and bandwidth throttling across d1lc/d1c on three families.
  ``massive`` is the partition-parallel workload (n up to 500 000 on
  ``gnp_fast``/geometric/ring-of-cliques) driven with ``--shards N``.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.baselines import johansson_coloring, naive_compute_acd, naive_multi_trial
from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters, solve_d1c, solve_d1lc, solve_delta_plus_one
from repro.core.acd import compute_acd
from repro.core.multitrial import multi_trial
from repro.core.state import ColoringResult, ColoringState
from repro.experiments.spec import BACKENDS, LEDGERS, MODES, ScenarioSpec
from repro.metrics.ledger import comm_row_metrics, phase_column_name
from repro.graphs import (
    degree_plus_one_lists,
    delta_plus_one_lists,
    gnp_fast_graph,
    gnp_graph,
    huge_color_space_lists,
    locally_sparse_graph,
    numeric_degree_lists,
    planted_almost_cliques,
    power_law_graph,
    random_geometric_graph,
    random_regular_graph,
    ring_of_cliques,
    shared_pool_lists,
    triangle_rich_graph,
    four_cycle_rich_graph,
)
from repro.sampling import detect_four_cycle_rich_pairs, detect_triangle_rich_edges
from repro.sampling.triangles import true_triangle_count

GraphBuilder = Callable[..., Tuple[nx.Graph, object]]
Solver = Callable[[ScenarioSpec, nx.Graph, object, int], Dict[str, object]]


# --------------------------------------------------------------------------- #
# Graph families
# --------------------------------------------------------------------------- #

def _gnp(seed: int, n: int = 100, p: float = 0.1):
    return gnp_graph(n, p, seed=seed), None


def _gnp_avg_degree(seed: int, n: int = 100, avg_degree: float = 10.0):
    """G(n, p) with p chosen for a target average degree (the E9/E11 sweep)."""
    return gnp_graph(n, min(0.5, avg_degree / n), seed=seed), None


def _gnp_fast(seed: int, n: int = 100, p=None, avg_degree=None):
    """Sparse-time G(n, p) for large n (a *distinct* family from ``gnp``:
    the geometric-skipping sampler draws a different edge stream per seed,
    so the committed ``gnp`` baselines stay byte-identical)."""
    if p is None and avg_degree is None:
        avg_degree = 8.0
    return gnp_fast_graph(n, p=p, avg_degree=avg_degree, seed=seed), None


def _power_law(seed: int, n: int = 100, attachment: int = 3, triangle_prob: float = 0.3):
    return power_law_graph(n, attachment, triangle_prob, seed=seed), None


def _random_regular(seed: int, n: int = 64, degree: int = 6):
    return random_regular_graph(n, degree, seed=seed), None


def _random_geometric(seed: int, n: int = 100, radius: float = 0.15):
    return random_geometric_graph(n, radius, seed=seed), None


def _ring_of_cliques(seed: int, num_cliques: int = 6, clique_size: int = 8):
    # Deterministic family; the seed is accepted for interface uniformity.
    return ring_of_cliques(num_cliques, clique_size), None


def _locally_sparse(seed: int, n: int = 100, degree: int = 8):
    return locally_sparse_graph(n, degree=degree, seed=seed), None


def _planted_almost_cliques(seed: int, **params):
    planted = planted_almost_cliques(seed=seed, **params)
    return planted.graph, planted


def _triangle_rich(seed: int, **params):
    planted = triangle_rich_graph(seed=seed, **params)
    return planted.graph, planted


def _four_cycle_rich(seed: int, **params):
    planted = four_cycle_rich_graph(seed=seed, **params)
    return planted.graph, planted


GRAPH_FAMILIES: Dict[str, GraphBuilder] = {
    "gnp": _gnp,
    "gnp_avg_degree": _gnp_avg_degree,
    "gnp_fast": _gnp_fast,
    "power_law": _power_law,
    "random_regular": _random_regular,
    "random_geometric": _random_geometric,
    "ring_of_cliques": _ring_of_cliques,
    "locally_sparse": _locally_sparse,
    "planted_almost_cliques": _planted_almost_cliques,
    "triangle_rich": _triangle_rich,
    "four_cycle_rich": _four_cycle_rich,
}

#: Accepted ``family_params`` keys per family.  A key outside this set is a
#: typo: it would silently change the graph-seed derivation (every key feeds
#: ``canonical_params``) while the builder ignored or rejected it only at
#: run time — so :func:`check_spec_params` rejects it at spec construction.
FAMILY_PARAM_KEYS: Dict[str, frozenset] = {
    "gnp": frozenset({"n", "p"}),
    "gnp_avg_degree": frozenset({"n", "avg_degree"}),
    "gnp_fast": frozenset({"n", "p", "avg_degree"}),
    "power_law": frozenset({"n", "attachment", "triangle_prob"}),
    "random_regular": frozenset({"n", "degree"}),
    "random_geometric": frozenset({"n", "radius"}),
    "ring_of_cliques": frozenset({"num_cliques", "clique_size"}),
    "locally_sparse": frozenset({"n", "degree"}),
    "planted_almost_cliques": frozenset({
        "num_cliques", "clique_size", "dropout", "num_sparse",
        "sparse_degree", "cross_edges",
    }),
    "triangle_rich": frozenset({
        "n", "background_p", "planted_cliques", "clique_size",
    }),
    "four_cycle_rich": frozenset({
        "n", "background_p", "planted_blocks", "side_size",
    }),
}


# --------------------------------------------------------------------------- #
# Solvers
# --------------------------------------------------------------------------- #

def _coloring_fingerprint(coloring: Mapping) -> str:
    """Stable digest of the full node->color assignment.

    Aggregate counts (rounds, bits, colors used) can survive a bug that
    permutes which node got which color; the fingerprint pins the exact
    assignment, so cross-backend trial rows must match it too.
    """
    items = sorted(coloring.items(), key=repr)
    digest = hashlib.sha256(repr(items).encode("utf-8")).hexdigest()
    return digest[:16]


def _phase_columns(bits_by_phase: Mapping[str, int],
                   messages_by_phase: Mapping[str, int]) -> Dict[str, int]:
    """Flatten per-phase ledger totals into trial-row columns.

    Within a scenario every trial runs the same solver, so the phase set is
    (near-)stable across trials; a phase that only some trials entered simply
    drops out of the aggregate (``aggregate_rows`` skips ragged columns),
    deterministically.
    """
    columns: Dict[str, int] = {}
    for phase, bits in sorted(bits_by_phase.items()):
        columns[phase_column_name("bits", phase)] = bits
    for phase, msgs in sorted(messages_by_phase.items()):
        columns[phase_column_name("messages", phase)] = msgs
    return columns


def _coloring_metrics(result: ColoringResult, graph: nx.Graph) -> Dict[str, object]:
    edges = max(1, graph.number_of_edges())
    nodes = max(1, graph.number_of_nodes())
    metrics = {
        "valid": bool(result.is_valid),
        "rounds": result.rounds,
        "randomized_rounds": result.randomized_rounds,
        "fallback_nodes": result.fallback_nodes,
        "total_bits": result.total_bits,
        "total_messages": result.total_messages,
        "bits_per_edge": round(result.total_bits / edges, 4),
        "bits_per_node": round(result.total_bits / nodes, 4),
        "max_edge_bits": result.max_edge_bits,
        "bandwidth_bits": result.bandwidth_bits,
        "colors_used": len({c for c in result.coloring.values() if c is not None}),
        "coloring_sha": _coloring_fingerprint(result.coloring),
    }
    metrics.update(_phase_columns(result.bits_by_phase, result.messages_by_phase))
    # Faulted runs report the perturbation outcome next to the workload
    # metrics; "valid" is then validity *under* the faults.  Fault-free rows
    # keep their historical schema (the committed baselines pin its bytes).
    if result.fault_stats is not None:
        metrics.update(result.fault_stats)
    return metrics


def _fault_kwargs(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """The ``faults=``/``fault_seed=`` kwargs of one trial (empty when clean).

    The fault RNG is rooted at the trial's *solver seed*: deterministic per
    trial, identical across backends/ledgers/worker counts, and varying
    trial to trial so a multi-trial scenario samples fresh perturbations.
    """
    if not spec.faults:
        return {}
    return {"faults": spec.faults, "fault_seed": seed}


def _network_fault_stats(network: Network) -> Dict[str, object]:
    """Fault counters of a directly-built network (empty when fault-free)."""
    return dict(network.fault_stats or {})


def _build_lists(spec: ScenarioSpec, graph: nx.Graph, seed: int):
    kind = spec.solver_params.get("lists", "degree_plus_one")
    if kind == "degree_plus_one":
        return degree_plus_one_lists(graph, seed=seed)
    if kind == "delta_plus_one":
        return delta_plus_one_lists(graph)
    if kind == "numeric":
        return numeric_degree_lists(graph, extra=int(spec.solver_params.get("extra", 0)))
    if kind == "shared_pool":
        return shared_pool_lists(graph, seed=seed)
    if kind == "huge":
        bits = int(spec.solver_params.get("color_bits", 60))
        return huge_color_space_lists(graph, color_space_bits=bits, seed=seed)
    raise ValueError(f"unknown list kind: {kind!r}")


def _solver_params(spec: ScenarioSpec, seed: int) -> ColoringParameters:
    return ColoringParameters.small(
        seed=seed, uniform=bool(spec.solver_params.get("uniform", False))
    )


def _solve_d1c(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
               tracer=None):
    result = solve_d1c(
        graph, params=_solver_params(spec, seed), mode=spec.mode,
        bandwidth_bits=spec.bandwidth_bits, backend=spec.backend,
        ledger=spec.ledger, shards=spec.shards, tracer=tracer,
        **_fault_kwargs(spec, seed),
    )
    return _coloring_metrics(result, graph)


def _solve_d1lc(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
                tracer=None):
    lists = _build_lists(spec, graph, seed)
    result = solve_d1lc(
        graph, lists, params=_solver_params(spec, seed), mode=spec.mode,
        bandwidth_bits=spec.bandwidth_bits, backend=spec.backend,
        ledger=spec.ledger, shards=spec.shards, tracer=tracer,
        **_fault_kwargs(spec, seed),
    )
    return _coloring_metrics(result, graph)


def _solve_delta_plus_one(spec: ScenarioSpec, graph: nx.Graph, truth,
                          seed: int, tracer=None):
    result = solve_delta_plus_one(
        graph, params=_solver_params(spec, seed), mode=spec.mode,
        bandwidth_bits=spec.bandwidth_bits, backend=spec.backend,
        ledger=spec.ledger, shards=spec.shards, tracer=tracer,
        **_fault_kwargs(spec, seed),
    )
    return _coloring_metrics(result, graph)


def _solve_johansson(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
                     tracer=None):
    result = johansson_coloring(
        graph, mode=spec.mode, seed=seed, backend=spec.backend,
        ledger=spec.ledger, shards=spec.shards, tracer=tracer,
        **_fault_kwargs(spec, seed),
    )
    return _coloring_metrics(result, graph)


def _solve_acd(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
               tracer=None):
    network = Network(
        graph, mode=spec.mode, bandwidth_bits=spec.bandwidth_bits,
        backend=spec.backend, ledger=spec.ledger, shards=spec.shards,
        tracer=tracer, **_fault_kwargs(spec, seed),
    )
    params = ColoringParameters.small(seed=seed)
    variant = spec.solver_params.get("variant", "hashed")
    if variant == "hashed":
        acd = compute_acd(network, params)
    elif variant == "naive":
        acd = naive_compute_acd(network, params)
    else:
        raise ValueError(f"unknown ACD variant: {variant!r}")
    edges = max(1, graph.number_of_edges())
    metrics: Dict[str, object] = {
        "valid": True,
        "rounds": acd.rounds_used,
        "total_bits": network.ledger.total_bits,
        "bits_per_edge": round(network.ledger.total_bits / edges, 4),
        "max_edge_bits": network.ledger.max_edge_bits,
        "bandwidth_bits": network.bandwidth_bits,
    }
    metrics.update(comm_row_metrics(network))
    metrics.update(acd.partition_summary())
    if truth is not None and hasattr(truth, "cliques"):
        metrics["planted_cliques"] = len(truth.cliques)
    metrics.update(_network_fault_stats(network))
    return metrics


def _solve_multitrial(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
                      tracer=None):
    tries = int(spec.solver_params.get("tries", 4))
    variant = spec.solver_params.get("variant", "hashed")
    delta = max((d for _, d in graph.degree()), default=0)
    lists = numeric_degree_lists(
        graph, extra=int(spec.solver_params.get("extra_factor", 3)) * delta
    )
    instance = ColoringInstance.d1lc(graph, lists)
    network = Network(
        graph, mode=spec.mode, bandwidth_bits=spec.bandwidth_bits,
        backend=spec.backend, ledger=spec.ledger, shards=spec.shards,
        tracer=tracer, **_fault_kwargs(spec, seed),
    )
    state = ColoringState(instance, network, ColoringParameters.small(seed=seed))
    if variant == "hashed":
        colored = multi_trial(state, tries)
    elif variant == "naive":
        colored = naive_multi_trial(state, tries)
    else:
        raise ValueError(f"unknown MultiTrial variant: {variant!r}")
    conflicts = sum(
        1 for u, v in graph.edges()
        if state.colors.get(u) is not None and state.colors.get(u) == state.colors.get(v)
    )
    edges = max(1, graph.number_of_edges())
    metrics = {
        "valid": conflicts == 0,
        "rounds": network.ledger.rounds,
        "colored": len(colored),
        "tries": tries,
        "total_bits": network.ledger.total_bits,
        "bits_per_edge": round(network.ledger.total_bits / edges, 4),
        "max_edge_bits": network.ledger.max_edge_bits,
        "bandwidth_bits": network.bandwidth_bits,
    }
    metrics.update(comm_row_metrics(network))
    metrics.update(_network_fault_stats(network))
    return metrics


def _solve_triangles(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
                     tracer=None):
    network = Network(
        graph, mode=spec.mode, bandwidth_bits=spec.bandwidth_bits,
        backend=spec.backend, ledger=spec.ledger, shards=spec.shards,
        tracer=tracer, **_fault_kwargs(spec, seed),
    )
    eps = float(spec.solver_params.get("eps", 0.3))
    result = detect_triangle_rich_edges(network, eps=eps, seed=seed)
    metrics: Dict[str, object] = {
        "valid": True,
        "rounds": result.rounds_used,
        "threshold": round(result.threshold, 4),
        "flagged_edges": len(result.flagged),
        "total_bits": network.ledger.total_bits,
        "max_edge_bits": network.ledger.max_edge_bits,
    }
    metrics.update(comm_row_metrics(network))
    # Score against exact triangle counts: every edge in >= 2*threshold
    # triangles must be flagged (Theorem 2's guarantee zone).
    rich = flagged_rich = 0
    for u, v in graph.edges():
        if true_triangle_count(network, u, v) >= 2 * result.threshold:
            rich += 1
            flagged_rich += int(result.is_flagged(u, v))
    metrics["rich_edges"] = rich
    metrics["rich_edges_flagged"] = flagged_rich
    metrics.update(_network_fault_stats(network))
    return metrics


def _solve_four_cycles(spec: ScenarioSpec, graph: nx.Graph, truth, seed: int,
                       tracer=None):
    network = Network(
        graph, mode=spec.mode, bandwidth_bits=spec.bandwidth_bits,
        backend=spec.backend, ledger=spec.ledger, shards=spec.shards,
        tracer=tracer, **_fault_kwargs(spec, seed),
    )
    eps = float(spec.solver_params.get("eps", 0.3))
    result = detect_four_cycle_rich_pairs(network, eps=eps, seed=seed)
    metrics = {
        "valid": True,
        "rounds": result.rounds_used,
        "threshold": round(result.threshold, 4),
        "flagged_wedges": len(result.flagged),
        "total_bits": network.ledger.total_bits,
        "max_edge_bits": network.ledger.max_edge_bits,
    }
    metrics.update(comm_row_metrics(network))
    metrics.update(_network_fault_stats(network))
    return metrics


SOLVERS: Dict[str, Solver] = {
    "d1c": _solve_d1c,
    "d1lc": _solve_d1lc,
    "delta_plus_one": _solve_delta_plus_one,
    "johansson": _solve_johansson,
    "acd": _solve_acd,
    "multitrial": _solve_multitrial,
    "triangles": _solve_triangles,
    "four_cycles": _solve_four_cycles,
}

#: Accepted ``solver_params`` keys per solver (see FAMILY_PARAM_KEYS).
SOLVER_PARAM_KEYS: Dict[str, frozenset] = {
    "d1c": frozenset({"uniform"}),
    "d1lc": frozenset({"uniform", "lists", "extra", "color_bits"}),
    "delta_plus_one": frozenset({"uniform"}),
    "johansson": frozenset(),
    "acd": frozenset({"variant"}),
    "multitrial": frozenset({"tries", "variant", "extra_factor"}),
    "triangles": frozenset({"eps"}),
    "four_cycles": frozenset({"eps"}),
}


def check_spec_params(spec: ScenarioSpec) -> None:
    """Reject unknown/typo'd parameter keys (called at spec construction).

    Every ``family_params``/``solver_params`` key feeds the canonical JSON
    that derives trial seeds, so a misspelled key used to silently shift the
    whole scenario onto different graphs while the builder ignored it.
    Unknown *families/solvers* are still :func:`validate_spec`'s job — their
    key sets are unknowable here — and fault params are validated by
    building the :class:`~repro.faults.FaultPlan` they describe.
    """
    family_keys = FAMILY_PARAM_KEYS.get(spec.family)
    if family_keys is not None:
        unknown = sorted(set(spec.family_params) - family_keys)
        if unknown:
            raise ValueError(
                f"{spec.name or '<scenario>'}: unknown family_params key(s) "
                f"{unknown} for family {spec.family!r} "
                f"(allowed: {sorted(family_keys)})"
            )
    solver_keys = SOLVER_PARAM_KEYS.get(spec.solver)
    if solver_keys is not None:
        unknown = sorted(set(spec.solver_params) - solver_keys)
        if unknown:
            raise ValueError(
                f"{spec.name or '<scenario>'}: unknown solver_params key(s) "
                f"{unknown} for solver {spec.solver!r} "
                f"(allowed: {sorted(solver_keys)})"
            )
    if spec.faults:
        from repro.faults import FaultPlan

        try:
            FaultPlan.from_params(spec.faults)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{spec.name or '<scenario>'}: {exc}") from None


# --------------------------------------------------------------------------- #
# Suites
# --------------------------------------------------------------------------- #

def _strict_budget(n: int) -> int:
    """The strict log2(n)-ish budget the bandwidth ablation (E12) runs at."""
    return max(8, int(math.log2(n)) + 1)


def _smoke_suite() -> List[ScenarioSpec]:
    """Small, fast scenarios across every workload class — the CI gate."""
    return [
        ScenarioSpec("gnp-d1c", "gnp", "d1c",
                     family_params={"n": 60, "p": 0.12}, trials=2),
        ScenarioSpec("powerlaw-d1lc", "power_law", "d1lc",
                     family_params={"n": 60, "attachment": 4}, trials=2),
        ScenarioSpec("ring-of-cliques-d1c", "ring_of_cliques", "d1c",
                     family_params={"num_cliques": 6, "clique_size": 7}, trials=2),
        ScenarioSpec("geometric-d1lc", "random_geometric", "d1lc",
                     family_params={"n": 70, "radius": 0.2}, trials=2),
        ScenarioSpec("gnp-johansson", "gnp", "johansson",
                     family_params={"n": 60, "p": 0.12}, trials=2),
        ScenarioSpec("planted-acd", "planted_almost_cliques", "acd",
                     family_params={"num_cliques": 3, "clique_size": 12, "num_sparse": 8},
                     trials=2),
        ScenarioSpec("triangle-detection", "triangle_rich", "triangles",
                     family_params={"n": 70, "planted_cliques": 2, "clique_size": 10},
                     solver_params={"eps": 0.3}, trials=1),
    ]


def _coloring_suite() -> List[ScenarioSpec]:
    """Pipeline vs baseline head-to-heads plus palette-structure variants (E11)."""
    specs: List[ScenarioSpec] = []
    for n in (60, 120, 240, 480):
        family_params = {"n": n, "avg_degree": 8.0}
        specs.append(ScenarioSpec(
            f"d1c-gnp-n{n}", "gnp_avg_degree", "d1c",
            family_params=family_params, seed=n, tags=("e11", "pipeline"),
        ))
        specs.append(ScenarioSpec(
            f"johansson-gnp-n{n}", "gnp_avg_degree", "johansson",
            family_params=family_params, seed=n, tags=("e11", "baseline"),
        ))
    specs.extend([
        ScenarioSpec("delta-plus-one-gnp", "gnp", "delta_plus_one",
                     family_params={"n": 120, "p": 0.1}),
        ScenarioSpec("d1lc-huge-colorspace", "gnp", "d1lc",
                     family_params={"n": 80, "p": 0.12},
                     solver_params={"lists": "huge", "color_bits": 60}),
        ScenarioSpec("d1lc-shared-pool", "gnp", "d1lc",
                     family_params={"n": 80, "p": 0.12},
                     solver_params={"lists": "shared_pool"}),
        ScenarioSpec("d1c-local-mode", "gnp", "d1c",
                     family_params={"n": 80, "p": 0.12}, mode="local"),
        ScenarioSpec("d1c-uniform-impl", "gnp", "d1c",
                     family_params={"n": 80, "p": 0.12},
                     solver_params={"uniform": True}),
    ])
    return specs


def _bandwidth_suite() -> List[ScenarioSpec]:
    """The hashed-vs-naive ablations at a strict budget (E12) plus regimes."""
    specs: List[ScenarioSpec] = []
    for tries in (4, 16, 32):
        for variant in ("hashed", "naive"):
            specs.append(ScenarioSpec(
                f"multitrial-{variant}-x{tries}", "gnp", "multitrial",
                family_params={"n": 100, "p": 0.12},
                solver_params={"tries": tries, "variant": variant},
                bandwidth_bits=_strict_budget(100), seed=12,
                tags=("e12", "multitrial", variant),
            ))
    for clique_size in (16, 32, 48):
        n = 3 * clique_size + 10
        for variant in ("hashed", "naive"):
            specs.append(ScenarioSpec(
                f"acd-{variant}-k{clique_size}", "planted_almost_cliques", "acd",
                family_params={"num_cliques": 3, "clique_size": clique_size,
                               "num_sparse": 10},
                solver_params={"variant": variant},
                bandwidth_bits=_strict_budget(n), seed=clique_size,
                tags=("e12", "acd", variant),
            ))
    # Bandwidth regimes: the same workload under tight and loose budgets.
    for bits in (8, 32, 128):
        specs.append(ScenarioSpec(
            f"d1c-budget-{bits}b", "gnp", "d1c",
            family_params={"n": 100, "p": 0.1}, bandwidth_bits=bits,
            tags=("regimes",),
        ))
    return specs


def _detection_suite() -> List[ScenarioSpec]:
    """Triangle / 4-cycle detection sweeps (E5/E6 workloads)."""
    specs: List[ScenarioSpec] = []
    for eps in (0.2, 0.3, 0.5):
        specs.append(ScenarioSpec(
            f"triangles-eps{eps}", "triangle_rich", "triangles",
            family_params={"n": 100, "planted_cliques": 3, "clique_size": 12},
            solver_params={"eps": eps}, tags=("e05",),
        ))
    specs.append(ScenarioSpec(
        "triangles-locally-sparse", "locally_sparse", "triangles",
        family_params={"n": 80, "degree": 6}, solver_params={"eps": 0.3},
    ))
    specs.append(ScenarioSpec(
        "four-cycles", "four_cycle_rich", "four_cycles",
        family_params={"n": 80, "planted_blocks": 2, "side_size": 8},
        solver_params={"eps": 0.3}, tags=("e06",),
    ))
    return specs


def _scaling_suite() -> List[ScenarioSpec]:
    """Round scaling with n across families (E9/E10) incl. the E16 workload."""
    specs: List[ScenarioSpec] = []
    for n in (60, 120, 240):
        tags = ("e09", "e16") if n == 240 else ("e09",)
        specs.append(ScenarioSpec(
            f"d1lc-gnp-n{n}", "gnp_avg_degree", "d1lc",
            family_params={"n": n, "avg_degree": 10.0}, seed=n, tags=tags,
        ))
    specs.extend([
        ScenarioSpec("d1lc-powerlaw-high-degree", "power_law", "d1lc",
                     family_params={"n": 300, "attachment": 6}, tags=("e10",)),
        ScenarioSpec("d1lc-random-regular", "random_regular", "d1lc",
                     family_params={"n": 128, "degree": 8}),
        ScenarioSpec("d1c-ring-of-cliques-large", "ring_of_cliques", "d1c",
                     family_params={"num_cliques": 12, "clique_size": 8}),
        ScenarioSpec("d1lc-geometric-large", "random_geometric", "d1lc",
                     family_params={"n": 200, "radius": 0.12}),
    ])
    return specs


def _scale_suite() -> List[ScenarioSpec]:
    """Large-n wall-clock workload: n = 2 000 / 10 000 / 50 000.

    Four graph families (gnp, power-law, geometric, ring-of-cliques) under
    the D1LC and D1C solvers, one trial each.  The n=2 000 points are the
    CI-sized smoke end of the suite; the n=50 000 points are the headline
    "tens of thousands of nodes on a laptop" data.  Degrees are kept modest
    (≈6–10) so the per-edge similarity sweeps stay linear in m; gnp is only
    used at n=2 000 because ``nx.gnp_random_graph`` itself is O(n²).
    """
    return [
        ScenarioSpec("d1lc-gnp-n2000", "gnp_avg_degree", "d1lc",
                     family_params={"n": 2000, "avg_degree": 8.0},
                     seed=2000, tags=("scale",)),
        ScenarioSpec("d1c-powerlaw-n2000", "power_law", "d1c",
                     family_params={"n": 2000, "attachment": 4},
                     seed=2000, tags=("scale",)),
        ScenarioSpec("d1lc-powerlaw-n10000", "power_law", "d1lc",
                     family_params={"n": 10000, "attachment": 3},
                     seed=10000, tags=("scale",)),
        ScenarioSpec("d1c-geometric-n10000", "random_geometric", "d1c",
                     family_params={"n": 10000, "radius": 0.016},
                     seed=10000, tags=("scale",)),
        ScenarioSpec("d1lc-ring-of-cliques-n50000", "ring_of_cliques", "d1lc",
                     family_params={"num_cliques": 6250, "clique_size": 8},
                     tags=("scale", "n50k")),
        ScenarioSpec("d1c-geometric-n50000", "random_geometric", "d1c",
                     family_params={"n": 50000, "radius": 0.0062},
                     seed=50000, tags=("scale", "n50k")),
    ]


def _robustness_suite() -> List[ScenarioSpec]:
    """Fault-intensity sweeps: the paper's algorithms under a broken network.

    Message-drop and bit-corruption rates × {d1lc, d1c} on three graph
    families, plus crash and sub-``log n`` throttle points and one clean
    reference scenario.  The committed ``BENCH_robustness.json`` baseline
    pins every outcome — validity under faults *and* the exact
    delivered/dropped/corrupted/crash counters — because the fault layer is
    deterministic per (seed, plan).
    """
    specs: List[ScenarioSpec] = [
        ScenarioSpec("gnp-d1c-clean", "gnp", "d1c",
                     family_params={"n": 60, "p": 0.12}, trials=2,
                     tags=("robustness", "clean")),
    ]
    drop_points = [
        ("gnp-d1c", "gnp", "d1c", {"n": 60, "p": 0.12}),
        ("powerlaw-d1lc", "power_law", "d1lc", {"n": 60, "attachment": 4}),
        ("geometric-d1lc", "random_geometric", "d1lc", {"n": 70, "radius": 0.2}),
    ]
    for drop in (0.02, 0.1):
        for prefix, family, solver, family_params in drop_points:
            specs.append(ScenarioSpec(
                f"{prefix}-drop{int(drop * 100)}", family, solver,
                family_params=family_params, faults={"drop": drop}, trials=2,
                tags=("robustness", "drop"),
            ))
    corrupt_points = [
        ("gnp-d1lc", "gnp", "d1lc", {"n": 60, "p": 0.12}),
        ("powerlaw-d1c", "power_law", "d1c", {"n": 60, "attachment": 4}),
    ]
    for corrupt, label in ((1e-3, "1e3"), (1e-2, "1e2")):
        for prefix, family, solver, family_params in corrupt_points:
            specs.append(ScenarioSpec(
                f"{prefix}-corrupt{label}", family, solver,
                family_params=family_params, faults={"corrupt": corrupt},
                trials=2, tags=("robustness", "corrupt"),
            ))
    specs.extend([
        ScenarioSpec("gnp-d1c-crash", "gnp", "d1c",
                     family_params={"n": 60, "p": 0.12},
                     faults={"crash": {2: (0, 1, 2), 6: (3, 4)}}, trials=2,
                     tags=("robustness", "crash")),
        ScenarioSpec("geometric-d1c-throttle", "random_geometric", "d1c",
                     family_params={"n": 70, "radius": 0.2},
                     faults={"throttle": 0.25}, trials=2,
                     tags=("robustness", "throttle")),
    ])
    return specs


def _massive_suite() -> List[ScenarioSpec]:
    """Partition-parallel large-n workload: n = 50 000 / 200 000 / 500 000.

    Three scalable families (``gnp_fast`` — the sparse-time G(n, p) sampler,
    geometric, ring-of-cliques) under the D1LC and D1C solvers.  The
    ``massive-smoke`` tier (n = 50 000) is what CI and
    ``benchmarks/bench_massive.py --smoke`` run; the n = 200 000 / 500 000
    points are the headline sharded-vs-serial workload (single trials,
    ``counters`` ledger).  Run with ``--shards N`` to fan the per-edge
    similarity sweeps over shard workers — aggregates are byte-identical to
    serial for any count, which is exactly what ``bench_massive`` asserts
    while it times the two.  Geometric radii target average degree ≈ 8
    (``r = sqrt(8 / (π n))``) so the sweeps stay linear in m.
    """
    return [
        ScenarioSpec("massive-ring-n50000-d1lc", "ring_of_cliques", "d1lc",
                     family_params={"num_cliques": 6250, "clique_size": 8},
                     tags=("massive", "massive-smoke")),
        ScenarioSpec("massive-gnp-n50000-d1c", "gnp_fast", "d1c",
                     family_params={"n": 50000, "avg_degree": 8.0},
                     seed=50000, tags=("massive", "massive-smoke")),
        ScenarioSpec("massive-gnp-n200000-d1lc", "gnp_fast", "d1lc",
                     family_params={"n": 200000, "avg_degree": 8.0},
                     seed=200000, tags=("massive", "n200k")),
        ScenarioSpec("massive-geometric-n200000-d1c", "random_geometric", "d1c",
                     family_params={"n": 200000, "radius": 0.00357},
                     seed=200000, tags=("massive", "n200k")),
        ScenarioSpec("massive-ring-n200000-d1c", "ring_of_cliques", "d1c",
                     family_params={"num_cliques": 25000, "clique_size": 8},
                     tags=("massive", "n200k")),
        ScenarioSpec("massive-gnp-n500000-d1c", "gnp_fast", "d1c",
                     family_params={"n": 500000, "avg_degree": 8.0},
                     seed=500000, tags=("massive", "n500k")),
        ScenarioSpec("massive-geometric-n500000-d1lc", "random_geometric", "d1lc",
                     family_params={"n": 500000, "radius": 0.00226},
                     seed=500000, tags=("massive", "n500k")),
        ScenarioSpec("massive-ring-n500000-d1lc", "ring_of_cliques", "d1lc",
                     family_params={"num_cliques": 62500, "clique_size": 8},
                     tags=("massive", "n500k")),
    ]


_SUITE_BUILDERS: Dict[str, Callable[[], List[ScenarioSpec]]] = {
    "smoke": _smoke_suite,
    "coloring": _coloring_suite,
    "bandwidth": _bandwidth_suite,
    "detection": _detection_suite,
    "scaling": _scaling_suite,
    "scale": _scale_suite,
    "robustness": _robustness_suite,
    "massive": _massive_suite,
}


def suite_names() -> List[str]:
    return sorted(_SUITE_BUILDERS)


def get_suite(name: str) -> List[ScenarioSpec]:
    """Resolve a suite name to its validated scenario list."""
    try:
        builder = _SUITE_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown suite: {name!r} (available: {', '.join(suite_names())})"
        ) from None
    specs = builder()
    seen = set()
    for spec in specs:
        if spec.name in seen:
            raise ValueError(f"suite {name!r} has duplicate scenario {spec.name!r}")
        seen.add(spec.name)
        validate_spec(spec)
    return specs


def validate_spec(spec: ScenarioSpec) -> None:
    """Reject a spec that references unknown registries or invalid knobs."""
    if not spec.name:
        raise ValueError("scenario name must be non-empty")
    if spec.family not in GRAPH_FAMILIES:
        raise ValueError(
            f"{spec.name}: unknown graph family {spec.family!r} "
            f"(available: {', '.join(sorted(GRAPH_FAMILIES))})"
        )
    if spec.solver not in SOLVERS:
        raise ValueError(
            f"{spec.name}: unknown solver {spec.solver!r} "
            f"(available: {', '.join(sorted(SOLVERS))})"
        )
    if spec.backend not in BACKENDS:
        raise ValueError(f"{spec.name}: unknown backend {spec.backend!r}")
    if spec.ledger not in LEDGERS:
        raise ValueError(f"{spec.name}: unknown ledger {spec.ledger!r}")
    if spec.mode not in MODES:
        raise ValueError(f"{spec.name}: unknown mode {spec.mode!r}")
    if spec.trials < 1:
        raise ValueError(f"{spec.name}: trials must be >= 1")
    if int(spec.shards) < 1:
        raise ValueError(f"{spec.name}: shards must be >= 1")
    if spec.bandwidth_bits is not None and int(spec.bandwidth_bits) < 1:
        raise ValueError(f"{spec.name}: bandwidth_bits must be >= 1 or None")
    # Param-key validation normally runs at construction; re-check here so
    # specs deserialized or built around __post_init__ cannot slip through.
    check_spec_params(spec)

"""Representative hash families (Lemma 1 of the paper).

Lemma 1 proves, via the probabilistic method, that for parameters
``alpha <= beta``, error ``nu`` and range ``lambda``, there exists a family of
``F = Theta(beta * lambda * nu^{-1} * log|U|)`` hash functions and a threshold
``sigma = Theta(beta^{-2} alpha^{-1} log(1/nu))`` such that for every pair of
sets ``A, B`` of size at most ``beta * lambda``, at least a ``(1 - nu)``
fraction of the family is *(A, B)-good*:

* ``|A|_h^{<=sigma}|`` is within a ``(1 ± beta)`` factor of ``sigma |A| / lambda``
  (or at most ``sigma * alpha * (1 + beta)`` when ``|A| < alpha * lambda``), and
* ``|A wedge_h^{<=sigma} B| <= 2 beta * sigma * |A| / lambda`` (resp.
  ``2 sigma alpha beta``).

The construction is existential; the paper's algorithms only require that the
two communicating endpoints agree on the family and exchange the *index* of a
member.  This module realises the family as a **seeded pseudorandom family**:
member ``i`` hashes ``x`` to ``1 + mix(seed, i, key(x)) mod lambda``.  A fully
random function has the (A, B)-good property with probability ``>= 1 - nu/2``
(Claim 1), and the seeded members behave statistically like fully random
functions on the universes the algorithms hash (colors, node IDs); Experiment
E1 validates exactly the Lemma 1 statistics for this family.  Communication
cost is unchanged: we only ever transmit ``index`` using ``log2 F`` bits.

The uniform (fully explicit) alternatives of Section 5 — pairwise-independent
hashing combined with averaging samplers — are implemented in
:mod:`repro.hashing.pairwise` and :mod:`repro.hashing.multiset` and are used by
the ``uniform=True`` code paths of MultiTrial and Buddy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Set

from repro.hashing.keys import _MASK64, MIX64_INIT, element_key, mix64, mix64_step

#: Hard cap on the family size used for *communication accounting*.  Lemma 1's
#: family has size ``Theta(beta * lambda / nu * log|U|)``; transmitting an
#: index therefore costs ``O(log(lambda / nu) + log log |U|)`` bits, which is
#: ``O(log n)`` for every parameterisation used by the algorithms.  The seeded
#: family is effectively unbounded, so we cap the *declared* size (and hence
#: the charged bits) at the value the lemma prescribes.
_MAX_FAMILY_SIZE = 1 << 30


@dataclass(frozen=True)
class RepresentativeFamilyParameters:
    """Resolved parameters of a representative family (Lemma 1)."""

    lam: int
    sigma: int
    family_size: int
    alpha: float
    beta: float
    nu: float
    universe_bits: float

    @property
    def index_bits(self) -> int:
        """Bits needed to transmit the index of a member of the family."""
        return max(1, (self.family_size - 1).bit_length())


def representative_family_parameters(
    alpha: float,
    beta: float,
    nu: float,
    lam: int,
    universe_size: int,
    sigma_cap: Optional[int] = None,
) -> RepresentativeFamilyParameters:
    """Compute ``(sigma, F)`` for the family, following Lemma 1.

    Parameters mirror the lemma: ``alpha <= beta`` in ``(0, 1)``, failure
    probability ``nu`` in ``(0, 1)``, range size ``lam`` and universe size
    ``|U|``.  ``sigma`` is clamped to ``lam`` (hash values cannot exceed the
    range) and optionally to ``sigma_cap`` — the algorithms cap ``sigma`` at
    the bandwidth ``b = Theta(log n)`` exactly as the paper does.
    """
    if not 0 < alpha <= beta < 1:
        raise ValueError(f"need 0 < alpha <= beta < 1, got alpha={alpha}, beta={beta}")
    if not 0 < nu < 1:
        raise ValueError(f"need 0 < nu < 1, got nu={nu}")
    if lam < 1:
        raise ValueError(f"lambda must be positive, got {lam}")
    if universe_size < 1:
        raise ValueError("universe_size must be positive")

    log_inv_nu = math.log(12.0 / nu)
    sigma = int(math.ceil(3.0 * log_inv_nu / (beta * beta * alpha)))
    sigma = max(1, min(sigma, lam))
    if sigma_cap is not None:
        sigma = max(1, min(sigma, int(sigma_cap)))

    log_universe = max(1.0, math.log2(universe_size))
    family_size = int(math.ceil(24.0 * beta * lam / nu * log_universe))
    family_size = max(2, min(family_size, _MAX_FAMILY_SIZE))

    return RepresentativeFamilyParameters(
        lam=int(lam),
        sigma=sigma,
        family_size=family_size,
        alpha=float(alpha),
        beta=float(beta),
        nu=float(nu),
        universe_bits=log_universe,
    )


class RepresentativeHashFunction:
    """A single member of a representative family, usable as ``h(x)``.

    Hash values are 1-based (``1 .. lambda``), matching the paper's ``[lambda]``.
    """

    __slots__ = ("family_seed", "index", "lam", "_prefix", "_memo")

    def __init__(self, family_seed: int, index: int, lam: int):
        self.family_seed = int(family_seed)
        self.index = int(index)
        self.lam = int(lam)
        # mix64(seed, index, key) == one step over the (seed, index) prefix,
        # so the prefix accumulator is computed once per function.  Values
        # are memoized by the element's 64-bit *key* (never by the element
        # itself: Python equality would alias 1 and 1.0, whose keys differ),
        # because the set primitives evaluate ``h`` on the same elements
        # several times per round.
        self._prefix = mix64_step(mix64_step(MIX64_INIT, self.family_seed), self.index)
        self._memo = {}

    def __call__(self, element: Hashable) -> int:
        key = element_key(element)
        value = self._memo.get(key)
        if value is None:
            value = 1 + mix64_step(self._prefix, key) % self.lam
            self._memo[key] = value
        return value

    def low_unique_values(self, keys: Iterable[int], sigma: int) -> Set[int]:
        """Hash values in ``[sigma]`` hit by *exactly one* of ``keys``.

        ``keys`` are precomputed :func:`~repro.hashing.keys.element_key`
        values (one per element, duplicates allowed — a duplicate key means a
        hash collision at key level and therefore a non-unique value, exactly
        as evaluating ``h`` element by element would conclude).  This is the
        single primitive ``EstimateSimilarity`` needs per endpoint; computing
        it here, with the splitmix64 finaliser of
        :func:`~repro.hashing.keys.mix64_step` inlined into one tight loop,
        avoids one Python call plus a memo lookup per element.  The values are
        identical to ``{h(x) for unique x}`` by construction.
        """
        lam = self.lam
        prefix = self._prefix
        counts: Dict[int, int] = {}
        get = counts.get
        for key in keys:
            # mix64_step(prefix, key), inlined (keys are already 64-bit).
            acc = ((prefix ^ key) + 0x9E3779B97F4A7C15) & _MASK64
            z = ((acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
            value = 1 + (z ^ (z >> 31)) % lam
            if value <= sigma:
                seen = get(value)
                counts[value] = 1 if seen is None else seen + 1
        return {value for value, count in counts.items() if count == 1}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"RepresentativeHashFunction(index={self.index}, lam={self.lam})"


class RepresentativeHashFamily:
    """An indexable family ``H = (h_i)_{i in [F]}`` of hash functions to ``[lambda]``.

    All parties constructing the family with the same ``(universe_label, lam,
    alpha, beta, nu, seed)`` obtain the *same* family, mirroring the paper's
    assumption that nodes share the (existential) family as common knowledge.
    Selecting and communicating a member costs :attr:`index_bits` bits.
    """

    def __init__(
        self,
        universe_label: str,
        universe_size: int,
        lam: int,
        alpha: float,
        beta: float,
        nu: float,
        seed: int = 0,
        sigma_cap: Optional[int] = None,
    ):
        self.universe_label = universe_label
        self.params = representative_family_parameters(
            alpha=alpha,
            beta=beta,
            nu=nu,
            lam=lam,
            universe_size=universe_size,
            sigma_cap=sigma_cap,
        )
        self._seed = mix64(seed, element_key(universe_label), self.params.lam)
        self._members: dict = {}

    # ----------------------------------------------------------------- access
    @property
    def family_seed(self) -> int:
        """The mixed seed members are derived from.

        ``RepresentativeHashFunction(family_seed, index, lam)`` rebuilds
        ``member(index)`` exactly — the identity the sharded similarity
        sweep uses to reconstruct members inside compute workers without
        shipping the family object.
        """
        return self._seed

    @property
    def lam(self) -> int:
        return self.params.lam

    @property
    def sigma(self) -> int:
        return self.params.sigma

    @property
    def size(self) -> int:
        return self.params.family_size

    @property
    def index_bits(self) -> int:
        return self.params.index_bits

    def member(self, index: int) -> RepresentativeHashFunction:
        """Return the ``index``-th member of the family (cached per family,
        so a member's value memo survives repeated lookups of the same index)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside family of size {self.size}")
        fn = self._members.get(index)
        if fn is None:
            fn = RepresentativeHashFunction(self._seed, index, self.lam)
            self._members[index] = fn
        return fn

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> RepresentativeHashFunction:
        return self.member(index)

    def sample_index(self, rng) -> int:
        """Pick a uniformly random member index using ``rng``."""
        return rng.randrange(self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"RepresentativeHashFamily(label={self.universe_label!r}, "
            f"lam={self.lam}, sigma={self.sigma}, size={self.size})"
        )

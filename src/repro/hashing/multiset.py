"""Representative multisets / averaging samplers (Appendix B).

An ``(delta, eps)``-averaging sampler ``Samp : [N] -> [M]^t`` guarantees that,
for every bounded function ``f`` on ``[M]``, the empirical mean of ``f`` on
the ``t`` sampled points is within ``eps`` of its true mean except with
probability ``delta``.  The paper uses such samplers (equivalently, families
of "representative multisets") in the uniform implementations of MultiTrial
and Buddy: a node samples ``t = Theta(log|C| + log n)`` positions of a domain
using only ``N = Theta(log n)`` random bits, so describing the sample costs a
single ``O(log n)``-bit message.

We realise the sampler as a seeded family: choice ``i`` of the random input
expands deterministically to ``t`` pseudorandom points of ``[M]``.  Truly
random multisets are ``(delta, eps)``-averaging samplers w.h.p. (a direct
Chernoff + union bound argument, the same one behind Lemma 1), and the unit
tests check the averaging property empirically.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.hashing.keys import mix64


class AveragingSampler:
    """One sampled multiset: ``t`` pseudorandom points of ``[1, domain_size]``."""

    __slots__ = ("seed", "index", "domain_size", "count")

    def __init__(self, seed: int, index: int, domain_size: int, count: int):
        if domain_size < 1:
            raise ValueError("domain_size must be positive")
        if count < 1:
            raise ValueError("count must be positive")
        self.seed = seed
        self.index = index
        self.domain_size = domain_size
        self.count = count

    def points(self) -> List[int]:
        """Return the sampled multiset (1-based values, may repeat)."""
        return [
            1 + mix64(self.seed, self.index, position) % self.domain_size
            for position in range(self.count)
        ]

    def empirical_mean(self, values: Sequence[float]) -> float:
        """Average of ``values[point - 1]`` over the sampled points."""
        if len(values) != self.domain_size:
            raise ValueError("values must cover the full domain")
        pts = self.points()
        return sum(values[p - 1] for p in pts) / len(pts)


class RepresentativeMultisetFamily:
    """A family of representative multisets over ``[domain_size]``.

    Selecting a member costs :attr:`index_bits` = ``Theta(log n)`` bits; the
    member itself describes ``count`` points of the domain.
    """

    def __init__(
        self,
        domain_size: int,
        count: int,
        seed: int = 0,
        random_bits: int = 24,
    ):
        if domain_size < 1:
            raise ValueError("domain_size must be positive")
        if count < 1:
            raise ValueError("count must be positive")
        if random_bits < 1 or random_bits > 48:
            raise ValueError("random_bits must be in [1, 48]")
        self.domain_size = int(domain_size)
        self.count = int(count)
        self.family_size = 1 << int(random_bits)
        self._seed = mix64(seed, self.domain_size, self.count, 0x5A4)

    @property
    def index_bits(self) -> int:
        return max(1, (self.family_size - 1).bit_length())

    def member(self, index: int) -> AveragingSampler:
        if not 0 <= index < self.family_size:
            raise IndexError(f"index {index} outside family of size {self.family_size}")
        return AveragingSampler(self._seed, index, self.domain_size, self.count)

    def sample_index(self, rng) -> int:
        return rng.randrange(self.family_size)

    def __len__(self) -> int:
        return self.family_size

    def __getitem__(self, index: int) -> AveragingSampler:
        return self.member(index)


def recommended_sample_count(domain_size: int, n: int, constant: float = 4.0) -> int:
    """The paper's ``t = Theta(log|C| + log n)`` sample count (Appendix B)."""
    return max(
        8,
        int(constant * (math.log2(max(domain_size, 2)) + math.log2(max(n, 2)))),
    )

"""Explicit pairwise-independent hash families.

The uniform implementations of Section 5 replace the (existential)
representative families with explicit objects.  The first ingredient is a
family of (almost) pairwise-independent hash functions ``h : C -> [lambda]``:
for a random member and any two distinct inputs,
``Pr[h(x1) = y1 and h(x2) = y2] <= (1 + eps) / lambda^2``.

We use the classical construction ``h_{a,b}(x) = ((a * key(x) + b) mod p) mod
lambda`` over a 61-bit Mersenne prime ``p``, which is exactly pairwise
independent over ``[p]`` and ``(1 + eps)``-approximately pairwise independent
after the final reduction mod ``lambda``.  Selecting a member requires two
numbers below ``p``, i.e. ``O(log p) = O(log |C|)`` bits — but the algorithms
never transmit ``(a, b)`` directly; they transmit an index into a subsampled
family of size ``poly(lambda, log|C|, 1/eps)`` (``family_size``), matching the
``(log lambda + log log |C| + log(1/eps))``-bit cost quoted in the paper.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Optional

from repro.hashing.keys import element_key, mix64

#: A Mersenne prime comfortably above every 61-bit element key chunk.
_PRIME = (1 << 61) - 1


class PairwiseHashFunction:
    """A single member ``h_{a,b}`` of the pairwise-independent family."""

    __slots__ = ("a", "b", "lam")

    def __init__(self, a: int, b: int, lam: int):
        if lam < 1:
            raise ValueError("lambda must be positive")
        if not 1 <= a < _PRIME:
            raise ValueError("coefficient a must be in [1, p)")
        if not 0 <= b < _PRIME:
            raise ValueError("coefficient b must be in [0, p)")
        self.a = a
        self.b = b
        self.lam = lam

    def __call__(self, element: Hashable) -> int:
        key = element_key(element) % _PRIME
        return 1 + ((self.a * key + self.b) % _PRIME) % self.lam

    def collision_count(self, elements: Iterable[Hashable]) -> int:
        """Number of elements involved in a collision inside ``elements``."""
        buckets = {}
        for x in elements:
            buckets.setdefault(self(x), []).append(x)
        return sum(len(items) for items in buckets.values() if len(items) > 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PairwiseHashFunction(a={self.a}, b={self.b}, lam={self.lam})"


class PairwiseHashFamily:
    """An indexable, explicitly constructible pairwise-independent family.

    The family is the subsampled set ``{h_{a_i, b_i}}_{i in [F]}`` where the
    coefficient pairs are derived deterministically from ``(seed, label, i)``.
    ``family_size`` defaults to ``poly(lambda, log|C|)`` as in the paper, so
    indices cost ``O(log lambda + log log |C|)`` bits.
    """

    def __init__(
        self,
        universe_label: str,
        universe_size: int,
        lam: int,
        seed: int = 0,
        family_size: Optional[int] = None,
    ):
        if lam < 1:
            raise ValueError("lambda must be positive")
        self.universe_label = universe_label
        self.universe_size = max(2, int(universe_size))
        self.lam = int(lam)
        self._seed = mix64(seed, element_key(universe_label), self.lam, 0xA11CE)
        if family_size is None:
            log_log_universe = max(1.0, math.log2(max(2.0, math.log2(self.universe_size))))
            family_size = int(max(16, (self.lam ** 2) * (1 + log_log_universe)))
        self.family_size = min(int(family_size), 1 << 30)

    @property
    def index_bits(self) -> int:
        return max(1, (self.family_size - 1).bit_length())

    def member(self, index: int) -> PairwiseHashFunction:
        if not 0 <= index < self.family_size:
            raise IndexError(f"index {index} outside family of size {self.family_size}")
        a = 1 + mix64(self._seed, index, 1) % (_PRIME - 1)
        b = mix64(self._seed, index, 2) % _PRIME
        return PairwiseHashFunction(a, b, self.lam)

    def __len__(self) -> int:
        return self.family_size

    def __getitem__(self, index: int) -> PairwiseHashFunction:
        return self.member(index)

    def sample_index(self, rng) -> int:
        return rng.randrange(self.family_size)

    def find_low_collision_index(
        self,
        elements: Iterable[Hashable],
        max_colliding: int,
        rng,
        attempts: int = 64,
    ) -> int:
        """Find (by rejection sampling) a member with few collisions on ``elements``.

        The uniform MultiTrial (Alg. 5) and uniform Buddy (Alg. 6) have one
        endpoint pick a hash function "with at most ... collisions" among its
        own elements.  Because a random pairwise-independent member has few
        collisions in expectation, rejection sampling finds one quickly; we
        fall back to the best seen index if none meets the target within
        ``attempts`` tries (and let the calling algorithm's own failure
        analysis absorb the slack).
        """
        elements = list(elements)
        best_index = self.sample_index(rng)
        best_collisions = self.member(best_index).collision_count(elements)
        if best_collisions <= max_colliding:
            return best_index
        for _ in range(attempts - 1):
            index = self.sample_index(rng)
            collisions = self.member(index).collision_count(elements)
            if collisions < best_collisions:
                best_index, best_collisions = index, collisions
            if best_collisions <= max_colliding:
                break
        return best_index

"""Stable integer keys and fast mixing for arbitrary hashable elements.

All hash families in this package operate on integers internally.  Elements of
the universes we hash (colors, node identifiers, neighbourhood members) may be
arbitrary hashable Python objects, so we first map them to a stable 64-bit key
(:func:`element_key`) and then mix that key with the family seed and member
index using a splitmix64-style finaliser (:func:`mix64`).

``element_key`` is deterministic across processes (it does not rely on
Python's randomised ``hash``), which keeps simulations reproducible.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

_MASK64 = (1 << 64) - 1
MIX64_INIT = 0x9E3779B97F4A7C15


def mix64_step(acc: int, value: int) -> int:
    """One mixing round: fold ``value`` into the accumulator ``acc``.

    Exposed so hot paths (e.g. hash functions with a fixed ``(seed, index)``
    prefix) can precompute a partial accumulator and pay for a single round
    per evaluation; ``mix64(a, b, c)`` is exactly three chained steps.
    """
    acc = (acc ^ (value & _MASK64)) & _MASK64
    # splitmix64 finaliser
    acc = (acc + 0x9E3779B97F4A7C15) & _MASK64
    z = acc
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def mix64(*values: int) -> int:
    """Mix integers into a 64-bit value with good avalanche behaviour."""
    acc = MIX64_INIT
    for value in values:
        acc = mix64_step(acc, value)
    return acc


@lru_cache(maxsize=1 << 18)
def _key_of_repr(text: str) -> int:
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@lru_cache(maxsize=1 << 18)
def _combine_part_keys(part_keys: tuple) -> int:
    """Mix already-computed per-part keys into a tuple key.

    The cache is keyed on the *part keys* (always ints), never on the tuple
    itself: Python equality unifies values whose keys differ (``1 == 1.0``,
    ``0.0 == -0.0``), so caching by tuple value would make the result depend
    on which variant warmed the cache first.  Part keys are exact by
    construction, so the cached result is always identical to the uncached
    computation.
    """
    return mix64(*part_keys, 0x7157)


def combine_part_keys(part_keys: tuple) -> int:
    """Key of a tuple whose per-part keys are already known.

    ``combine_part_keys(tuple(map(element_key, t))) == element_key(t)`` for any
    tuple ``t`` — hot paths that hash the same scaled elements many times (the
    similarity sweep precomputes one key list per node) use this to skip the
    per-call tuple dispatch of :func:`element_key`.
    """
    return _combine_part_keys(part_keys)


def element_key(element: object) -> int:
    """Return a stable 64-bit integer key for ``element``."""
    if isinstance(element, bool):
        return int(element)
    if isinstance(element, int):
        return element & _MASK64 if element >= 0 else mix64(-element, 0x5A5A5A5A)
    if isinstance(element, tuple):
        # Scaled-set tuples are rehashed for every family member and every
        # edge that touches them; int parts key instantly and repr-keyed
        # parts hit the _key_of_repr cache, so only the mix is memoized.
        return _combine_part_keys(tuple(map(element_key, element)))
    return _key_of_repr(repr(element))

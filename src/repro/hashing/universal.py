"""Approximately-universal hash families for huge color spaces (Appendix D.3).

When colors live in a space of size up to ``exp(n^Theta(1))``, nodes cannot
afford to send a color verbatim.  Appendix D.3 instead has every node ``v``
pick a ``(1 + eps)``-approximately universal hash function
``h_v : C -> [M]`` with ``M = Theta(n^d)`` and broadcast its index; neighbours
then communicate colors *to v* by sending ``h_v(color)``.  Provided no
collision occurs among the ``(Delta + 1)^2`` colors relevant to any single
neighbourhood — which happens w.h.p. for ``d >= 6`` — the hash values are a
perfect stand-in for the colors.

``ApproximatelyUniversalFamily`` is that object: members are derived from a
seed and an index, describing a member costs ``O(log log |C| + log M)`` bits
(the paper's bound from [BJKS93]/[Vad12]), and evaluating a member reduces an
arbitrary color to an integer below ``M``.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.hashing.keys import element_key, mix64


class UniversalHashFunction:
    """A member of an approximately universal family, mapping ``C -> [M]``."""

    __slots__ = ("seed", "index", "modulus")

    def __init__(self, seed: int, index: int, modulus: int):
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        self.seed = seed
        self.index = index
        self.modulus = modulus

    def __call__(self, element: Hashable) -> int:
        return mix64(self.seed, self.index, element_key(element)) % self.modulus

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"UniversalHashFunction(index={self.index}, M={self.modulus})"


class ApproximatelyUniversalFamily:
    """Family of ``(1 + eps)``-approximately universal hash functions.

    Parameters
    ----------
    color_space_bits:
        ``log2 |C|`` of the color space being reduced.  Only its logarithm
        enters the index cost, so color spaces of size ``exp(n^Theta(1))`` are
        supported — exactly the regime of Appendix D.3.
    modulus:
        Output range ``M``.  The coloring pipeline uses ``M = n^d`` with
        ``d >= 6`` so that no collision occurs in any 2-neighbourhood w.h.p.
    eps:
        Approximation slack; only affects the declared family size / index
        cost, mirroring the explicit constructions cited by the paper.
    """

    def __init__(
        self,
        color_space_bits: float,
        modulus: int,
        eps: float = 1.0,
        seed: int = 0,
    ):
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.color_space_bits = max(1.0, float(color_space_bits))
        self.modulus = int(modulus)
        self.eps = float(eps)
        self._seed = mix64(seed, self.modulus, 0xD3)
        # Size of the explicit family: poly(M, log|C|, 1/eps).  Only its log
        # matters for communication, so the exact polynomial is unimportant.
        log_log_c = max(1.0, math.log2(self.color_space_bits))
        self.family_size = int(
            min(1 << 40, max(16, self.modulus * (1.0 / self.eps + log_log_c)))
        )

    @property
    def index_bits(self) -> int:
        """Bits to describe a member: ``O(log M + log log |C| + log 1/eps)``."""
        return max(1, (self.family_size - 1).bit_length())

    @property
    def value_bits(self) -> int:
        """Bits to send one hash value, ``ceil(log2 M)``."""
        return max(1, (self.modulus - 1).bit_length())

    def member(self, index: int) -> UniversalHashFunction:
        if not 0 <= index < self.family_size:
            raise IndexError(f"index {index} outside family of size {self.family_size}")
        return UniversalHashFunction(self._seed, index, self.modulus)

    def sample_index(self, rng) -> int:
        return rng.randrange(self.family_size)

    def __len__(self) -> int:
        return self.family_size

    def __getitem__(self, index: int) -> UniversalHashFunction:
        return self.member(index)

"""Error-correcting code used by the uniform ``eps-Buddy`` (Algorithm 6).

The uniform almost-clique test encodes each neighbour identifier with a code
of parameters ``[3b, b, b/2]``: a ``b``-bit identifier is expanded to ``3b``
bits so that any two *distinct* identifiers differ in at least ``b/2``
positions.  The nodes then compare random positions of concatenations of
codewords to distinguish "we genuinely share these neighbours" from "the hash
function collided".

A concrete code meeting the ``[3b, b, b/2]`` guarantee (e.g. a concatenated
Reed–Solomon code) is classical but heavyweight; we implement the standard
*random code*: the codeword of ``w`` is a pseudorandom ``3b``-bit string
derived from ``w``.  Two independent uniform strings of length ``3b`` agree on
fewer than ``3b/4`` of their positions except with probability
``exp(-Omega(b))``, so distinct identifiers are at relative distance ``>= 1/4``
w.h.p. — the property Algorithm 6 needs.  The distance property is unit- and
property-tested, and the substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from repro.hashing.keys import element_key, mix64


def hamming_distance(first: Sequence[int], second: Sequence[int]) -> int:
    """Number of positions where the two equal-length bit sequences differ."""
    if len(first) != len(second):
        raise ValueError("bitstrings must have equal length")
    return sum(1 for a, b in zip(first, second) if a != b)


class ErrorCorrectingCode:
    """A (pseudorandom) ``[expansion * b, b, ~b/2]`` binary code.

    Parameters
    ----------
    word_bits:
        ``b``, the number of bits of the identifiers being encoded.
    expansion:
        Codeword length multiplier (the paper uses 3).
    seed:
        Seed shared by all parties so they agree on the code.
    """

    def __init__(self, word_bits: int, expansion: int = 3, seed: int = 0):
        if word_bits < 1:
            raise ValueError("word_bits must be positive")
        if expansion < 2:
            raise ValueError("expansion must be at least 2")
        self.word_bits = int(word_bits)
        self.expansion = int(expansion)
        self.codeword_bits = self.word_bits * self.expansion
        self._seed = mix64(seed, self.word_bits, self.expansion, 0xECC)

    def encode(self, word: Hashable) -> Tuple[int, ...]:
        """Return the codeword of ``word`` as a tuple of 0/1 bits."""
        bits = []
        key = element_key(word)
        chunk = 0
        for position in range(self.codeword_bits):
            if position % 64 == 0:
                chunk = mix64(self._seed, key, position // 64)
            bits.append((chunk >> (position % 64)) & 1)
        return tuple(bits)

    def relative_distance(self, first: Hashable, second: Hashable) -> float:
        """Fraction of differing positions between the two codewords."""
        return hamming_distance(self.encode(first), self.encode(second)) / self.codeword_bits

"""Hashing and pseudorandomness substrate.

This package implements every pseudorandom object the paper relies on:

* the set operators ``A|_h^{<=sigma}``, ``A wedge_h B``, ``A neg_h B`` of
  Section 3.1 (:mod:`repro.hashing.setops`),
* representative hash families (Lemma 1), realised as a seeded, indexable
  family so that only the index is ever communicated
  (:mod:`repro.hashing.representative`),
* explicit pairwise-independent hash families used by the uniform
  implementations of Section 5 (:mod:`repro.hashing.pairwise`),
* approximately-universal hash families for handling huge color spaces
  (Appendix D.3, :mod:`repro.hashing.universal`),
* representative multisets / averaging samplers (Appendix B,
  :mod:`repro.hashing.multiset`),
* the error-correcting code used by the uniform ``eps-Buddy`` procedure
  (Algorithm 6, :mod:`repro.hashing.ecc`).
"""

from repro.hashing.setops import (
    hash_image,
    low_part,
    colliding_part,
    unique_part,
)
from repro.hashing.representative import (
    RepresentativeHashFamily,
    RepresentativeHashFunction,
    representative_family_parameters,
)
from repro.hashing.pairwise import PairwiseHashFamily, PairwiseHashFunction
from repro.hashing.universal import ApproximatelyUniversalFamily
from repro.hashing.multiset import AveragingSampler, RepresentativeMultisetFamily
from repro.hashing.ecc import ErrorCorrectingCode, hamming_distance

__all__ = [
    "hash_image",
    "low_part",
    "colliding_part",
    "unique_part",
    "RepresentativeHashFamily",
    "RepresentativeHashFunction",
    "representative_family_parameters",
    "PairwiseHashFamily",
    "PairwiseHashFunction",
    "ApproximatelyUniversalFamily",
    "AveragingSampler",
    "RepresentativeMultisetFamily",
    "ErrorCorrectingCode",
    "hamming_distance",
]

"""Set operators of Section 3.1 of the paper.

For a hash function ``h : U -> [lambda]``, sets ``A, B`` and a threshold
``sigma``, the paper defines (Notations, Section 3.1):

* ``A|_h^{<=sigma}``     — elements of ``A`` hashing to a value at most ``sigma``,
* ``A wedge_h^{<=sigma} B`` — elements of ``A|_h^{<=sigma}`` that collide with
  some *other* element of ``B``,
* ``A neg_h^{<=sigma} B``   — elements of ``A|_h^{<=sigma}`` whose hash is not
  shared by any other element of ``B``.

These are implemented here as plain functions over Python sets and an
arbitrary hash callable, so they are usable with representative families,
pairwise-independent families, or any ad-hoc function in tests.  The
elementary containment facts of Proposition 1 are exercised by unit and
property-based tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Hashable, Iterable, Set

HashFn = Callable[[Hashable], int]


def hash_image(h: HashFn, elements: Iterable[Hashable]) -> Set[int]:
    """Return ``h(S)``, the set of hash values of ``elements``."""
    return {h(x) for x in elements}


def low_part(h: HashFn, elements: Iterable[Hashable], sigma: int) -> Set[Hashable]:
    """Return ``A|_h^{<=sigma}``: elements hashing to a value in ``[sigma]``.

    Hash values are 1-based, following the paper's ``[lambda] = {1..lambda}``.
    """
    return {x for x in elements if h(x) <= sigma}


def _hash_buckets(h: HashFn, elements: Iterable[Hashable], sigma: int) -> Dict[int, list]:
    buckets: Dict[int, list] = defaultdict(list)
    for x in elements:
        value = h(x)
        if value <= sigma:
            buckets[value].append(x)
    return buckets


def colliding_part(
    h: HashFn,
    first: Iterable[Hashable],
    second: Iterable[Hashable],
    sigma: int,
) -> Set[Hashable]:
    """Return ``A wedge_h^{<=sigma} B``.

    An element ``x`` of ``A`` belongs to the result iff ``h(x) <= sigma`` and
    some element of ``B`` *other than x itself* has the same hash value.
    """
    second_buckets = _hash_buckets(h, second, sigma)
    result: Set[Hashable] = set()
    for x in first:
        value = h(x)
        if value > sigma:
            continue
        bucket = second_buckets.get(value, ())
        for other in bucket:
            if other != x:
                result.add(x)
                break
    return result


def unique_part(
    h: HashFn,
    first: Iterable[Hashable],
    second: Iterable[Hashable],
    sigma: int,
) -> Set[Hashable]:
    """Return ``A neg_h^{<=sigma} B`` = ``A|_h^{<=sigma}`` minus the colliding part."""
    first = set(first)
    return low_part(h, first, sigma) - colliding_part(h, first, second, sigma)


def unique_hash_values(
    h: HashFn,
    own: Iterable[Hashable],
    sigma: int,
) -> Dict[int, Hashable]:
    """Map each hash value in ``[sigma]`` hit by exactly one element to that element.

    This is the view a node transmits in ``EstimateSimilarity`` and the
    uniform ``eps-Buddy``: for each low hash value, whether it owns a unique
    preimage (and, locally, which one).
    """
    buckets = _hash_buckets(h, own, sigma)
    return {value: items[0] for value, items in buckets.items() if len(items) == 1}

"""Command-line interface for running the reproduction's main pipelines.

The CLI wraps the library's entry points so that the headline experiments can
be run without writing Python::

    python -m repro.cli color      --n 200 --p 0.08 --problem d1c
    python -m repro.cli color      --n 150 --p 0.1  --problem d1lc --color-bits 60
    python -m repro.cli acd        --cliques 4 --clique-size 18
    python -m repro.cli triangles  --n 150 --eps 0.3
    python -m repro.cli baseline   --n 200 --p 0.08

Each subcommand prints a plain-text table of the measurements the paper's
statements are about (rounds, bandwidth, validity, detection quality).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import johansson_coloring
from repro.congest import Network
from repro.core import ColoringParameters, solve_d1c, solve_d1lc, solve_delta_plus_one
from repro.core.acd import compute_acd
from repro.graphs import (
    degree_plus_one_lists,
    gnp_graph,
    huge_color_space_lists,
    planted_almost_cliques,
)
from repro.graphs.generators import triangle_rich_graph
from repro.metrics import format_table
from repro.sampling import detect_triangle_rich_edges
from repro.sampling.triangles import true_triangle_count


def _coloring_rows(name: str, result) -> List[dict]:
    return [{
        "run": name,
        "valid": result.is_valid,
        "rounds": result.rounds,
        "randomized rounds": result.randomized_rounds,
        "fallback nodes": result.fallback_nodes,
        "max bits/edge/round": result.max_edge_bits,
        "budget": result.bandwidth_bits,
    }]


def cmd_color(args: argparse.Namespace) -> int:
    graph = gnp_graph(args.n, args.p, seed=args.seed)
    params = ColoringParameters.small(seed=args.seed, uniform=args.uniform)
    if args.problem == "d1c":
        result = solve_d1c(graph, params=params, mode=args.mode,
                           backend=args.backend, ledger=args.ledger)
    elif args.problem == "delta+1":
        result = solve_delta_plus_one(graph, params=params, mode=args.mode,
                                      backend=args.backend, ledger=args.ledger)
    else:
        if args.color_bits:
            lists = huge_color_space_lists(graph, color_space_bits=args.color_bits, seed=args.seed)
        else:
            lists = degree_plus_one_lists(graph, seed=args.seed)
        result = solve_d1lc(graph, lists, params=params, mode=args.mode,
                            backend=args.backend, ledger=args.ledger)
    print(format_table(_coloring_rows(args.problem, result), title="coloring run"))
    print("\nrounds by phase:")
    for phase, rounds in sorted(result.rounds_by_phase.items()):
        print(f"  {phase:>10}: {rounds}")
    return 0 if result.is_valid else 1


def cmd_baseline(args: argparse.Namespace) -> int:
    graph = gnp_graph(args.n, args.p, seed=args.seed)
    pipeline = solve_d1c(graph, params=ColoringParameters.small(seed=args.seed),
                         backend=args.backend)
    baseline = johansson_coloring(graph, seed=args.seed, backend=args.backend)
    rows = _coloring_rows("pipeline", pipeline) + _coloring_rows("johansson", baseline)
    print(format_table(rows, title="pipeline vs random-trial baseline"))
    return 0 if pipeline.is_valid and baseline.is_valid else 1


def cmd_acd(args: argparse.Namespace) -> int:
    planted = planted_almost_cliques(
        num_cliques=args.cliques, clique_size=args.clique_size,
        num_sparse=args.sparse, seed=args.seed,
    )
    params = ColoringParameters.small(seed=args.seed, uniform=args.uniform)
    network = Network(planted.graph, backend=args.backend)
    acd = compute_acd(network, params)
    summary = acd.partition_summary()
    summary["rounds"] = acd.rounds_used
    summary["planted cliques"] = len(planted.cliques)
    print(format_table([summary], title="almost-clique decomposition"))
    return 0


def cmd_triangles(args: argparse.Namespace) -> int:
    planted = triangle_rich_graph(n=args.n, planted_cliques=3, clique_size=14, seed=args.seed)
    network = Network(planted.graph, backend=args.backend)
    result = detect_triangle_rich_edges(network, eps=args.eps, seed=args.seed)
    rich = flagged_rich = 0
    for u, v in planted.graph.edges():
        if true_triangle_count(network, u, v) >= 2 * result.threshold:
            rich += 1
            flagged_rich += result.is_flagged(u, v)
    rows = [{
        "edges": planted.graph.number_of_edges(),
        "threshold (εΔ)": round(result.threshold, 1),
        "rich edges": rich,
        "rich edges flagged": flagged_rich,
        "rounds": result.rounds_used,
    }]
    print(format_table(rows, title="local triangle detection"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduction of 'Overcoming Congestion in Distributed Coloring'"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=["batch", "dict"], default="batch",
                       help="transport backend (identical accounting; 'dict' is "
                            "the per-message reference implementation)")

    color = sub.add_parser("color", help="run the D1LC/D1C/(Δ+1) coloring pipeline")
    color.add_argument("--n", type=int, default=200)
    color.add_argument("--p", type=float, default=0.08)
    color.add_argument("--problem", choices=["d1c", "d1lc", "delta+1"], default="d1c")
    color.add_argument("--color-bits", type=int, default=0,
                       help="draw D1LC palettes from a 2^bits color space (Appendix D.3)")
    color.add_argument("--mode", choices=["congest", "local"], default="congest")
    color.add_argument("--uniform", action="store_true",
                       help="use the uniform (Section 5) implementations")
    color.add_argument("--seed", type=int, default=0)
    add_backend_option(color)
    color.add_argument("--ledger", choices=["records", "counters"], default="records",
                       help="keep full per-round history or aggregate counters only")
    color.set_defaults(func=cmd_color)

    baseline = sub.add_parser("baseline", help="compare against the random-trial baseline")
    baseline.add_argument("--n", type=int, default=200)
    baseline.add_argument("--p", type=float, default=0.08)
    baseline.add_argument("--seed", type=int, default=0)
    add_backend_option(baseline)
    baseline.set_defaults(func=cmd_baseline)

    acd = sub.add_parser("acd", help="compute an almost-clique decomposition")
    acd.add_argument("--cliques", type=int, default=4)
    acd.add_argument("--clique-size", type=int, default=18)
    acd.add_argument("--sparse", type=int, default=20)
    acd.add_argument("--uniform", action="store_true")
    acd.add_argument("--seed", type=int, default=0)
    add_backend_option(acd)
    acd.set_defaults(func=cmd_acd)

    triangles = sub.add_parser("triangles", help="local triangle-richness detection")
    triangles.add_argument("--n", type=int, default=150)
    triangles.add_argument("--eps", type=float, default=0.3)
    triangles.add_argument("--seed", type=int, default=0)
    add_backend_option(triangles)
    triangles.set_defaults(func=cmd_triangles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""Command-line interface for running the reproduction's main pipelines.

The CLI wraps the library's entry points so that the headline experiments can
be run without writing Python::

    python -m repro.cli color      --n 200 --p 0.08 --problem d1c
    python -m repro.cli color      --n 150 --p 0.1  --problem d1lc --color-bits 60
    python -m repro.cli acd        --cliques 4 --clique-size 18
    python -m repro.cli triangles  --n 150 --eps 0.3
    python -m repro.cli baseline   --n 200 --p 0.08
    python -m repro.cli suite list
    python -m repro.cli suite run smoke --workers 4
    python -m repro.cli suite run scale --backend slot
    python -m repro.cli suite run smoke --profile --out /tmp/prof
    python -m repro.cli suite run smoke --faults drop=0.01,corrupt=1e-4
    python -m repro.cli suite run robustness --workers 4
    python -m repro.cli suite run smoke --seed 7 --out /tmp/reseeded
    python -m repro.cli suite run smoke --trace /tmp/traces --progress
    python -m repro.cli suite run smoke --digest /tmp/digests
    python -m repro.cli diff /tmp/a/DIGEST_gnp-d1c.jsonl /tmp/b/DIGEST_gnp-d1c.jsonl --bisect
    python -m repro.cli trace summarize TRACE_powerlaw-d1lc.jsonl
    python -m repro.cli trace compare /tmp/a/TRACE_gnp-d1c.jsonl /tmp/b/TRACE_gnp-d1c.jsonl
    python -m repro.cli suite compare --baseline BENCH_suite.json
    python -m repro.cli suite compare --baseline BENCH_suite.json --timing-budget 50
    python -m repro.cli suite compare --baseline BENCH_robustness.json
    python -m repro.cli suite compare --comm-budget 10 --comm-baseline BENCH_comm.json
    python -m repro.cli trace summarize TRACE_gnp-d1c.jsonl --json
    python -m repro.cli report smoke --dir /tmp/out
    python -m repro.cli report gnp-d1c --dir /tmp/out --html /tmp/report.html
    python -m repro.cli report trend --dir /tmp/out

Each subcommand prints a plain-text table of the measurements the paper's
statements are about (rounds, bandwidth, validity, detection quality).  The
``suite`` subcommands drive the experiment orchestration subsystem
(:mod:`repro.experiments`): declarative scenario suites, a parallel trial
runner, artifact snapshots, and the regression gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.baselines import johansson_coloring
from repro.congest import Network
from repro.core import ColoringParameters, solve_d1c, solve_d1lc, solve_delta_plus_one
from repro.core.acd import compute_acd
from repro.graphs import (
    degree_plus_one_lists,
    gnp_graph,
    huge_color_space_lists,
    planted_almost_cliques,
)
from repro.graphs.generators import triangle_rich_graph
from repro.metrics import format_table
from repro.sampling import detect_triangle_rich_edges
from repro.sampling.triangles import true_triangle_count


def _coloring_rows(name: str, result) -> List[dict]:
    return [{
        "run": name,
        "valid": result.is_valid,
        "rounds": result.rounds,
        "randomized rounds": result.randomized_rounds,
        "fallback nodes": result.fallback_nodes,
        "max bits/edge/round": result.max_edge_bits,
        "budget": result.bandwidth_bits,
    }]


def cmd_color(args: argparse.Namespace) -> int:
    graph = gnp_graph(args.n, args.p, seed=args.seed)
    params = ColoringParameters.small(seed=args.seed, uniform=args.uniform)
    if args.problem == "d1c":
        result = solve_d1c(graph, params=params, mode=args.mode,
                           backend=args.backend, ledger=args.ledger,
                           shards=args.shards)
    elif args.problem == "delta+1":
        result = solve_delta_plus_one(graph, params=params, mode=args.mode,
                                      backend=args.backend, ledger=args.ledger,
                                      shards=args.shards)
    else:
        if args.color_bits:
            lists = huge_color_space_lists(graph, color_space_bits=args.color_bits, seed=args.seed)
        else:
            lists = degree_plus_one_lists(graph, seed=args.seed)
        result = solve_d1lc(graph, lists, params=params, mode=args.mode,
                            backend=args.backend, ledger=args.ledger,
                            shards=args.shards)
    print(format_table(_coloring_rows(args.problem, result), title="coloring run"))
    print("\nrounds by phase:")
    for phase, rounds in sorted(result.rounds_by_phase.items()):
        print(f"  {phase:>10}: {rounds}")
    return 0 if result.is_valid else 1


def cmd_baseline(args: argparse.Namespace) -> int:
    graph = gnp_graph(args.n, args.p, seed=args.seed)
    pipeline = solve_d1c(graph, params=ColoringParameters.small(seed=args.seed),
                         backend=args.backend, shards=args.shards)
    baseline = johansson_coloring(graph, seed=args.seed, backend=args.backend,
                                  shards=args.shards)
    rows = _coloring_rows("pipeline", pipeline) + _coloring_rows("johansson", baseline)
    print(format_table(rows, title="pipeline vs random-trial baseline"))
    return 0 if pipeline.is_valid and baseline.is_valid else 1


def cmd_acd(args: argparse.Namespace) -> int:
    planted = planted_almost_cliques(
        num_cliques=args.cliques, clique_size=args.clique_size,
        num_sparse=args.sparse, seed=args.seed,
    )
    params = ColoringParameters.small(seed=args.seed, uniform=args.uniform)
    network = Network(planted.graph, backend=args.backend, shards=args.shards)
    acd = compute_acd(network, params)
    summary = acd.partition_summary()
    summary["rounds"] = acd.rounds_used
    summary["planted cliques"] = len(planted.cliques)
    print(format_table([summary], title="almost-clique decomposition"))
    return 0


def cmd_triangles(args: argparse.Namespace) -> int:
    planted = triangle_rich_graph(n=args.n, planted_cliques=3, clique_size=14, seed=args.seed)
    network = Network(planted.graph, backend=args.backend, shards=args.shards)
    result = detect_triangle_rich_edges(network, eps=args.eps, seed=args.seed)
    rich = flagged_rich = 0
    for u, v in planted.graph.edges():
        if true_triangle_count(network, u, v) >= 2 * result.threshold:
            rich += 1
            flagged_rich += result.is_flagged(u, v)
    rows = [{
        "edges": planted.graph.number_of_edges(),
        "threshold (εΔ)": round(result.threshold, 1),
        "rich edges": rich,
        "rich edges flagged": flagged_rich,
        "rounds": result.rounds_used,
    }]
    print(format_table(rows, title="local triangle detection"))
    return 0


def _parse_faults(text: str) -> dict:
    """Parse ``drop=0.01,corrupt=1e-4,throttle=0.5`` into a fault params dict.

    The CLI covers the numeric fault axes; crash schedules and per-edge
    delays are structured mappings and stay spec-level (see
    :class:`repro.faults.FaultPlan`).  Key validation happens in
    ``FaultPlan.from_params`` so typos get the canonical error message.
    """
    params: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise SystemExit(
                f"--faults expects comma-separated key=value pairs, got {part!r}"
            )
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"--faults {key.strip()}: not a number: {value!r}")
    from repro.faults import FaultPlan

    try:
        FaultPlan.from_params(params)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"--faults: {exc}")
    return params


def _suite_summary_rows(summary: dict, timing: Optional[dict] = None) -> List[dict]:
    rows = []
    scenario_timing = (timing or {}).get("scenarios", {})
    for name, entry in summary["scenarios"].items():
        metrics = entry["metrics"]
        row = {
            "scenario": name,
            "solver": entry["solver"],
            "valid": f"{entry['valid_trials']}/{entry['trials']}",
            "rounds (mean)": metrics.get("rounds", {}).get("mean", "-"),
            "bits/edge (mean)": metrics.get("bits_per_edge", {}).get("mean", "-"),
            "colors (mean)": metrics.get("colors_used", {}).get("mean", "-"),
        }
        if "faults" in entry:
            # Scalar axes print as k=v; schedule axes (crash/delay) print
            # their key alone — every configured axis stays visible.
            row["faults"] = ",".join(
                k if isinstance(v, dict) else f"{k}={v}"
                for k, v in sorted(entry["faults"].items())
            )
            row["dropped (mean)"] = metrics.get(
                "dropped_messages", {}).get("mean", "-")
        if name in scenario_timing:
            row["wall s"] = scenario_timing[name]
        rows.append(row)
    return rows


def cmd_suite_list(args: argparse.Namespace) -> int:
    from repro.experiments import get_suite, suite_names

    if args.suite:
        specs = get_suite(args.suite)
        print(format_table([spec.describe() for spec in specs],
                           title=f"suite '{args.suite}' ({len(specs)} scenarios)"))
        return 0
    rows = []
    for name in suite_names():
        specs = get_suite(name)
        rows.append({
            "suite": name,
            "scenarios": len(specs),
            "trials": sum(spec.trials for spec in specs),
            "solvers": ",".join(sorted({spec.solver for spec in specs})),
        })
    print(format_table(rows, title="scenario suites (repro suite list <name> for detail)"))
    return 0


def cmd_suite_run(args: argparse.Namespace) -> int:
    from repro.experiments import (
        aggregate_suite, profile_filename, run_suite, timing_summary,
        write_suite_artifacts,
    )

    from repro.obs import Heartbeat, current_rss_mb

    started = time.perf_counter()
    # --progress heartbeats go to stderr (plain lines, one per completed
    # trial) so they never disturb stdout tables or artifact bytes.
    heartbeat = Heartbeat(interval_s=0.0) if args.progress else None

    def progress(row):
        if args.verbose:
            status = "ok" if row.get("valid") else "INVALID"
            print(f"  {row['scenario']} trial {row['trial']}: {status} "
                  f"({row['wall_s']}s)")
        if heartbeat is not None:
            heartbeat.beat(
                f"[suite] {row['scenario']} trial {row['trial']}: "
                f"rounds={row.get('rounds', '-')} "
                f"elapsed={round(time.perf_counter() - started, 1)}s "
                f"rss={current_rss_mb()}MiB"
            )

    out_dir = Path(args.out)
    profile_dir = out_dir if args.profile else None
    trace_dir = Path(args.trace) if args.trace else None
    digest_dir = Path(args.digest) if args.digest else None
    if args.profile and args.workers > 1:
        print("profiling forces serial execution; ignoring --workers")
    faults = _parse_faults(args.faults) if args.faults else None
    result = run_suite(
        args.suite, workers=args.workers, backend=args.backend,
        trials=args.trials,
        progress=progress if (args.verbose or args.progress) else None,
        only=args.only, profile_dir=profile_dir, seed=args.seed,
        faults=faults, shards=args.shards, trace_dir=trace_dir,
        digest_dir=digest_dir,
    )
    summary = aggregate_suite(result)
    timing = timing_summary(result)
    # A profiled run's wall-clock is inflated by cProfile overhead: never
    # let it refresh the timing artifact the --timing-budget gate reads.
    paths = write_suite_artifacts(result, out_dir, summary=summary,
                                  timing=not args.profile)
    print(format_table(
        _suite_summary_rows(summary, timing),
        title=f"suite '{args.suite}': {len(result.scenarios)} scenarios, "
              f"{len(result.rows())} trials, {result.wall_s}s "
              f"(workers={args.workers})",
    ))
    written = ", ".join(str(paths[kind]) for kind in ("suite", "trials", "timing")
                        if kind in paths)
    print(f"\nwrote {written}")
    # Append this run to the out dir's run-history registry (see
    # `repro report trend`).  Observation-only: the record is derived from
    # the artifacts just written, never read back into a run.
    from repro.obs.analytics import RUNS_FILENAME, append_run, run_record

    append_run(out_dir / RUNS_FILENAME, run_record(
        summary, timing=None if args.profile else timing,
        timestamp=time.time(),
        knobs={
            "backend": args.backend, "shards": args.shards,
            "workers": args.workers, "trials": args.trials,
            "only": args.only, "faults": args.faults,
        },
        digest_dir=digest_dir,
    ))
    if trace_dir is not None:
        from repro.obs import trace_filename

        traces = ", ".join(
            str(trace_dir / trace_filename(s.spec.name))
            for s in result.scenarios
        )
        print(f"traces: {traces}")
    if digest_dir is not None:
        from repro.obs.forensics import digest_filename

        streams = ", ".join(
            str(digest_dir / digest_filename(s.spec.name))
            for s in result.scenarios
        )
        print(f"digests: {streams}")
    if args.profile:
        print("profiled run: timing artifact not refreshed "
              "(wall-clock includes profiler overhead)")
    if args.profile:
        profiles = ", ".join(
            profile_filename(s.spec.name) for s in result.scenarios
        )
        print(f"profiles: {profiles}")
    if args.seed is not None:
        print(f"seed override {args.seed} recorded in the aggregate "
              "(suite compare refuses baselines with a different seed)")
    # Invalid trials under an active fault plan are an *observation* — that
    # is the robustness measurement, gated by `suite compare` against the
    # committed baseline — so only effectively-clean scenarios fail the run
    # (an all-default plan like drop=0.0 runs unwrapped and gates normally).
    from repro.faults import FaultPlan

    def _perturbed(spec):
        return bool(spec.faults) and FaultPlan.coerce(spec.faults) is not None

    invalid = [s.spec.name for s in result.scenarios
               if s.valid_trials < len(s.rows) and not _perturbed(s.spec)]
    invalid_faulted = [s.spec.name for s in result.scenarios
                       if s.valid_trials < len(s.rows) and _perturbed(s.spec)]
    if invalid_faulted:
        print(f"invalid under faults (expected; gate via suite compare): "
              f"{', '.join(invalid_faulted)}")
    if invalid:
        print(f"INVALID scenarios: {', '.join(invalid)}")
        return 1
    return 0


def cmd_suite_compare(args: argparse.Namespace) -> int:
    from repro.experiments import (
        TIMING_FILENAME, aggregate_suite, compare_rss, compare_summaries,
        compare_timing, gate_passes, load_suite_summary, load_suite_timing,
        run_suite, timing_summary,
    )

    baseline = load_suite_summary(Path(args.baseline))
    fresh_timing = None
    wants_timing_artifact = (
        args.timing_budget is not None or args.rss_budget is not None
    )
    if args.fresh:
        fresh = load_suite_summary(Path(args.fresh))
        if wants_timing_artifact:
            # A pre-produced aggregate keeps its timing (and peak RSS) in the
            # sibling file.
            sibling = Path(args.fresh).parent / TIMING_FILENAME
            if sibling.exists():
                fresh_timing = load_suite_timing(sibling, suite=fresh.get("suite"))
            else:
                print(f"no fresh timing found at {sibling}; "
                      "skipping timing/RSS checks")
    else:
        suite = args.suite or baseline.get("suite")
        print(f"running suite '{suite}' fresh (workers={args.workers}) ...")
        result = run_suite(
            suite, workers=args.workers, backend=args.backend,
            seed=args.seed,
            faults=_parse_faults(args.faults) if args.faults else None,
            shards=args.shards,
        )
        fresh = aggregate_suite(result)
        fresh_timing = timing_summary(result)
    findings = compare_summaries(baseline, fresh,
                                 max_regression=args.max_regression / 100.0)
    if args.comm_budget is not None:
        # The comm gate is hard (fail severity): communication volumes are
        # byte-deterministic, so unlike timing/RSS there is no machine noise
        # to soften for.
        import json as _json

        from repro.experiments.compare import Finding
        from repro.obs.analytics import compare_comm

        try:
            comm_baseline = _json.loads(Path(args.comm_baseline).read_text())
        except (OSError, ValueError) as exc:
            findings.append(Finding(
                "fail", "-", "comm_baseline",
                f"failed to load {args.comm_baseline}: {exc}",
            ))
        else:
            findings.extend(compare_comm(
                comm_baseline, fresh, budget=args.comm_budget / 100.0,
            ))
    if wants_timing_artifact and fresh_timing is not None:
        # The timing/RSS checks are soft by design: a missing/stale baseline
        # file (or one without this suite's entry) skips them with a note
        # instead of discarding the correctness result that was just
        # computed.
        try:
            timing_baseline = load_suite_timing(Path(args.timing_baseline),
                                                suite=fresh.get("suite"))
        except (OSError, ValueError) as exc:
            print(f"timing/RSS checks skipped: {exc}")
        else:
            if args.timing_budget is not None:
                findings.extend(compare_timing(
                    timing_baseline, fresh_timing,
                    budget=args.timing_budget / 100.0,
                    strict=args.strict_timing,
                ))
            if args.rss_budget is not None:
                findings.extend(compare_rss(
                    timing_baseline, fresh_timing,
                    budget=args.rss_budget / 100.0, strict=args.strict_rss,
                ))
    if findings:
        print(format_table(
            [f.as_row() for f in findings],
            title=f"compare vs {args.baseline} (gate: >{args.max_regression:g}% "
                  "mean regression on rounds/bits/colors, any correctness drift)",
        ))
    else:
        print("no drift: fresh aggregates identical to the baseline")
    if gate_passes(findings):
        print("\nregression gate: PASS")
        return 0
    print("\nregression gate: FAIL")
    return 1


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        load_trace, render_timeline, summarize_trace, summary_as_dict,
    )

    if args.json:
        # Machine-readable shape: one key per trace file, key-sorted and
        # stable — CI consumes this without scraping tables.
        payload = {
            Path(path).name: summary_as_dict(summarize_trace(load_trace(Path(path))))
            for path in args.trace
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for index, path in enumerate(args.trace):
        if index:
            print()
        events = load_trace(Path(path))
        print(render_timeline(
            summarize_trace(events),
            title=f"phase timeline: {Path(path).name}",
        ))
    return 0


def cmd_trace_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        TRACE_PREFIX, compare_traces, comparison_as_dict, load_trace,
        render_comparison,
    )

    def short(path: Path) -> str:
        stem = path.stem
        return stem[len(TRACE_PREFIX):] if stem.startswith(TRACE_PREFIX) else stem

    path_a, path_b = Path(args.a), Path(args.b)
    name_a, name_b = short(path_a), short(path_b)
    if name_a == name_b:
        # Same scenario from two runs: disambiguate by parent directory.
        name_a = f"{path_a.parent.name or 'a'}/{name_a}"
        name_b = f"{path_b.parent.name or 'b'}/{name_b}"
    events_a = load_trace(path_a)
    events_b = load_trace(path_b)
    if args.json:
        payload = comparison_as_dict(events_a, events_b,
                                     name_a=name_a, name_b=name_b)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["identical"] else 1
    print(render_comparison(events_a, events_b, name_a=name_a, name_b=name_b))
    # diff semantics: exit 1 when the deterministic columns drifted.
    return 1 if compare_traces(events_a, events_b) else 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Align two DIGEST_*.jsonl streams; optionally bisect to the first node.

    Exit code mirrors ``trace compare``: 0 when the streams are identical,
    1 when they diverge, 2 on unreadable inputs.
    """
    import json

    from repro.obs.forensics import (
        bisect_divergence, first_divergence, load_digests, render_bisect,
        render_divergence,
    )

    try:
        events_a = load_digests(Path(args.a))
        events_b = load_digests(Path(args.b))
    except (OSError, ValueError) as exc:
        print(f"repro diff: {exc}", file=sys.stderr)
        return 2
    divergence = first_divergence(events_a, events_b, trial=args.trial)
    report = None
    if args.bisect and divergence is not None:
        report = bisect_divergence(events_a, events_b, divergence=divergence,
                                   window=args.window)
    if args.json:
        payload: dict = {"identical": divergence is None}
        if divergence is not None:
            payload["divergence"] = divergence.as_dict()
        if report is not None:
            payload["bisect"] = report.as_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if divergence is None else 1
    if report is not None:
        print(render_bisect(report))
    else:
        print(render_divergence(divergence))
    return 0 if divergence is None else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import SUITE_FILENAME, load_suite_summary
    from repro.obs import (
        TRACE_PREFIX, TRACE_SUFFIX, load_trace, render_timeline,
        summarize_trace,
    )
    from repro.obs.analytics import (
        detect_trends, load_runs, render_report, shard_balance,
        suite_overview_rows, trend_rows,
    )
    from repro.experiments.compare import gate_passes

    report_dir = Path(args.dir)

    if args.target == "trend":
        runs = load_runs(Path(args.runs) if args.runs
                         else report_dir / "RUNS.jsonl")
        if not runs:
            print("no run history found (suite runs append to RUNS.jsonl "
                  "in their --out directory)")
            return 0
        print(format_table(trend_rows(runs),
                           title=f"run history ({len(runs)} runs)"))
        findings = detect_trends(runs, wall_budget=args.wall_budget / 100.0,
                                 rss_budget=args.rss_budget / 100.0)
        if findings:
            print(format_table([f.as_row() for f in findings],
                               title="cross-run findings"))
        else:
            print("no cross-run drift detected")
        return 0 if gate_passes(findings) else 1

    # Scenario or suite report: gather the aggregate (when present) and the
    # matching TRACE_*.jsonl files from the report directory.
    summary = None
    suite_path = report_dir / SUITE_FILENAME
    if suite_path.exists():
        summary = load_suite_summary(suite_path)
    traces = []
    for path in sorted(report_dir.glob(f"{TRACE_PREFIX}*{TRACE_SUFFIX}")):
        name = path.stem[len(TRACE_PREFIX):]
        if (
            args.target == name
            or (summary is not None and summary.get("suite") == args.target)
        ):
            traces.append((name, load_trace(path)))
    if summary is not None and summary.get("suite") != args.target:
        # Scenario target: narrow the overview to the one scenario.
        scenarios = summary.get("scenarios", {})
        if args.target in scenarios:
            summary = dict(summary)
            summary["scenarios"] = {args.target: scenarios[args.target]}
        else:
            summary = None
    if summary is None and not traces:
        print(f"nothing to report: no {SUITE_FILENAME} for suite/scenario "
              f"{args.target!r} and no matching {TRACE_PREFIX}*{TRACE_SUFFIX} "
              f"in {report_dir}")
        return 2

    if summary is not None:
        print(format_table(suite_overview_rows(summary),
                           title=f"report: {args.target}"))
    for name, events in traces:
        print()
        print(render_timeline(summarize_trace(events),
                              title=f"phase timeline: {name}"))
        balance = shard_balance(events)
        if balance:
            print(f"shard balance: {balance['shards']} shards, "
                  f"imbalance ratio {balance['imbalance_ratio']}, "
                  f"cut fraction {balance['cut_fraction']}")

    html_path = Path(args.html) if args.html else (
        report_dir / f"REPORT_{args.target}.html"
    )
    html_path.parent.mkdir(parents=True, exist_ok=True)
    html_path.write_text(render_report(
        f"repro report: {args.target}", summary=summary, traces=traces,
    ))
    print(f"\nwrote {html_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduction of 'Overcoming Congestion in Distributed Coloring'"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=["batch", "dict", "slot", "columnar"],
                       default="batch",
                       help="transport backend (identical accounting; 'dict' is "
                            "the per-message reference implementation, 'slot' the "
                            "CSR-routed large-n fast path, 'columnar' the "
                            "numpy flat-array core)")

    def add_shards_option(p: argparse.ArgumentParser, default: int = 1) -> None:
        p.add_argument("--shards", type=int, default=default,
                       help="partition-parallel execution width (results are "
                            "bit-identical for any count; >1 fans the per-edge "
                            "similarity sweeps over persistent shard workers)")

    color = sub.add_parser("color", help="run the D1LC/D1C/(Δ+1) coloring pipeline")
    color.add_argument("--n", type=int, default=200)
    color.add_argument("--p", type=float, default=0.08)
    color.add_argument("--problem", choices=["d1c", "d1lc", "delta+1"], default="d1c")
    color.add_argument("--color-bits", type=int, default=0,
                       help="draw D1LC palettes from a 2^bits color space (Appendix D.3)")
    color.add_argument("--mode", choices=["congest", "local"], default="congest")
    color.add_argument("--uniform", action="store_true",
                       help="use the uniform (Section 5) implementations")
    color.add_argument("--seed", type=int, default=0)
    add_backend_option(color)
    add_shards_option(color)
    color.add_argument("--ledger", choices=["records", "counters"], default="records",
                       help="keep full per-round history or aggregate counters only")
    color.set_defaults(func=cmd_color)

    baseline = sub.add_parser("baseline", help="compare against the random-trial baseline")
    baseline.add_argument("--n", type=int, default=200)
    baseline.add_argument("--p", type=float, default=0.08)
    baseline.add_argument("--seed", type=int, default=0)
    add_backend_option(baseline)
    add_shards_option(baseline)
    baseline.set_defaults(func=cmd_baseline)

    acd = sub.add_parser("acd", help="compute an almost-clique decomposition")
    acd.add_argument("--cliques", type=int, default=4)
    acd.add_argument("--clique-size", type=int, default=18)
    acd.add_argument("--sparse", type=int, default=20)
    acd.add_argument("--uniform", action="store_true")
    acd.add_argument("--seed", type=int, default=0)
    add_backend_option(acd)
    add_shards_option(acd)
    acd.set_defaults(func=cmd_acd)

    triangles = sub.add_parser("triangles", help="local triangle-richness detection")
    triangles.add_argument("--n", type=int, default=150)
    triangles.add_argument("--eps", type=float, default=0.3)
    triangles.add_argument("--seed", type=int, default=0)
    add_backend_option(triangles)
    add_shards_option(triangles)
    triangles.set_defaults(func=cmd_triangles)

    suite = sub.add_parser(
        "suite", help="declarative scenario suites: list, run in parallel, "
                      "diff against the committed baseline"
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    s_list = suite_sub.add_parser("list", help="list suites or one suite's scenarios")
    s_list.add_argument("suite", nargs="?", default=None)
    s_list.set_defaults(func=cmd_suite_list)

    def add_suite_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes (results are identical for any count)")
        p.add_argument("--backend", choices=["batch", "dict", "slot", "columnar"],
                       default=None,
                       help="override every scenario's transport backend "
                            "('columnar' needs numpy)")
        p.add_argument("--shards", type=int, default=None,
                       help="override every scenario's shard count "
                            "(bit-identical aggregates for any value)")
        p.add_argument("--seed", type=int, default=None,
                       help="override every scenario's base seed; recorded in "
                            "the aggregate, and suite compare refuses to diff "
                            "against a baseline with a different seed")
        p.add_argument("--faults", default=None, metavar="K=V[,K=V...]",
                       help="deterministic fault plan applied to every "
                            "scenario, e.g. drop=0.01,corrupt=1e-4,"
                            "throttle=0.5 (message-drop probability, per-bit "
                            "corruption probability, bandwidth factor); crash "
                            "schedules and per-edge delays are spec-level "
                            "knobs — see the robustness suite")

    s_run = suite_sub.add_parser("run", help="run a suite and write artifacts")
    s_run.add_argument("suite", help="suite name (see 'repro suite list')")
    add_suite_run_options(s_run)
    s_run.add_argument("--trials", type=int, default=None,
                       help="override every scenario's trial count")
    s_run.add_argument("--only", action="append", default=None, metavar="SCENARIO",
                       help="run only the named scenario (repeatable); the "
                            "resulting aggregate covers a subset and will not "
                            "gate cleanly against a full-suite baseline")
    s_run.add_argument("--out", default=".",
                       help="directory for BENCH_suite*.json artifacts")
    s_run.add_argument("--profile", action="store_true",
                       help="wrap each scenario in cProfile and write its top-25 "
                            "cumulative hotspots to PROFILE_<scenario>.txt next "
                            "to the artifacts (forces serial execution; wall-clock "
                            "fields include profiler overhead)")
    s_run.add_argument("--verbose", action="store_true",
                       help="print each trial as it completes")
    s_run.add_argument("--trace", default=None, metavar="DIR",
                       help="attach a round tracer to every trial and write "
                            "one TRACE_<scenario>.jsonl per scenario into DIR "
                            "(observation-only: artifacts stay byte-identical "
                            "to an untraced run)")
    s_run.add_argument("--progress", action="store_true",
                       help="emit a plain heartbeat line to stderr per "
                            "completed trial (elapsed, rounds, current RSS); "
                            "off by default, never changes artifacts")
    s_run.add_argument("--digest", default=None, metavar="DIR",
                       help="attach a determinism-digest tracer to every "
                            "trial and write one DIGEST_<scenario>.jsonl "
                            "stream per scenario into DIR; rows and the "
                            "aggregate gain per-trial state_digest values "
                            "(observation-only: results stay byte-identical "
                            "to an undigested run; diff streams with "
                            "'repro diff')")
    s_run.set_defaults(func=cmd_suite_run)

    s_compare = suite_sub.add_parser(
        "compare", help="regression-gate a fresh run against a baseline snapshot"
    )
    s_compare.add_argument("suite", nargs="?", default=None,
                           help="suite to run fresh (default: the baseline's)")
    s_compare.add_argument("--baseline", default="BENCH_suite.json",
                           help="committed aggregate snapshot to diff against")
    s_compare.add_argument("--fresh", default=None,
                           help="already-produced fresh snapshot (skips the run)")
    s_compare.add_argument("--max-regression", type=float, default=10.0,
                           help="allowed mean regression in percent (default 10)")
    s_compare.add_argument("--timing-budget", type=float, default=None, metavar="PCT",
                           help="opt-in soft wall-clock check: warn when a scenario "
                                "is more than PCT%% slower than the committed "
                                "timing baseline (timing never fails the gate "
                                "unless --strict-timing is given)")
    s_compare.add_argument("--strict-timing", action="store_true",
                           help="escalate timing-budget violations from warnings "
                                "to gate failures")
    s_compare.add_argument("--timing-baseline", default="BENCH_suite_timing.json",
                           help="committed timing snapshot for --timing-budget")
    s_compare.add_argument("--rss-budget", type=float, default=None, metavar="PCT",
                           help="opt-in soft peak-memory check: warn when a "
                                "scenario's peak RSS is more than PCT%% above "
                                "the committed timing baseline's peak_rss_mb "
                                "(never fails the gate unless --strict-rss is "
                                "given)")
    s_compare.add_argument("--strict-rss", action="store_true",
                           help="escalate rss-budget violations from warnings "
                                "to gate failures")
    s_compare.add_argument("--comm-budget", type=float, default=None, metavar="PCT",
                           help="opt-in hard comm-volume check: fail when a "
                                "scenario's per-log2(n) comm coefficient "
                                "(max_edge_bits, bits_per_node) exceeds the "
                                "committed comm baseline by more than PCT%% "
                                "(comm volumes are deterministic, so this is "
                                "a fail-severity gate, unlike timing/RSS)")
    s_compare.add_argument("--comm-baseline", default="BENCH_comm.json",
                           help="committed comm baseline for --comm-budget "
                                "(build with repro.obs.analytics."
                                "build_comm_baseline)")
    add_suite_run_options(s_compare)
    s_compare.set_defaults(func=cmd_suite_compare)

    trace = sub.add_parser(
        "trace", help="summarize or diff TRACE_*.jsonl round traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    t_sum = trace_sub.add_parser(
        "summarize",
        help="render a trace's phase timeline (rounds, bits, wall time per phase)",
    )
    t_sum.add_argument("trace", nargs="+", help="TRACE_*.jsonl file(s)")
    t_sum.add_argument("--json", action="store_true",
                       help="emit the summaries as key-sorted JSON (one key "
                            "per trace file) instead of tables")
    t_sum.set_defaults(func=cmd_trace_summarize)

    t_cmp = trace_sub.add_parser(
        "compare",
        help="diff two traces per phase; exits 1 when the deterministic "
             "columns (rounds/messages/bits) drifted, wall-clock is "
             "informational only",
    )
    t_cmp.add_argument("a", help="first TRACE_*.jsonl")
    t_cmp.add_argument("b", help="second TRACE_*.jsonl")
    t_cmp.add_argument("--json", action="store_true",
                       help="emit both summaries plus the deterministic "
                            "drift as key-sorted JSON (same exit semantics)")
    t_cmp.set_defaults(func=cmd_trace_compare)

    diff = sub.add_parser(
        "diff",
        help="align two DIGEST_*.jsonl streams and report the first "
             "divergent (round, phase, shard); --bisect re-runs the window "
             "in fine mode to name the first divergent node",
    )
    diff.add_argument("a", help="first DIGEST_*.jsonl stream")
    diff.add_argument("b", help="second DIGEST_*.jsonl stream")
    diff.add_argument("--bisect", action="store_true",
                      help="re-run both sides over a round window with "
                           "per-node fine digests and name the first "
                           "divergent node and component (inbox bytes, "
                           "liveness, or solver state)")
    diff.add_argument("--window", type=int, default=1,
                      help="fine-mode half-window in rounds around the "
                           "divergent round (default 1)")
    diff.add_argument("--trial", type=int, default=None,
                      help="restrict the alignment to one trial index")
    diff.add_argument("--json", action="store_true",
                      help="emit the divergence (and bisection) as "
                           "key-sorted JSON; exit 1 when streams diverge")
    diff.set_defaults(func=cmd_diff)

    report = sub.add_parser(
        "report",
        help="render a terminal + self-contained HTML report from BENCH/TRACE "
             "artifacts, or 'trend' for the cross-run history",
    )
    report.add_argument("target",
                        help="suite name, scenario name, or the literal "
                             "'trend' (cross-run registry findings)")
    report.add_argument("--dir", default=".",
                        help="directory holding BENCH_suite.json / "
                             "TRACE_*.jsonl / RUNS.jsonl (default: .)")
    report.add_argument("--html", default=None, metavar="PATH",
                        help="HTML output path (default: "
                             "REPORT_<target>.html inside --dir)")
    report.add_argument("--runs", default=None, metavar="FILE",
                        help="run-history registry for 'trend' "
                             "(default: RUNS.jsonl inside --dir)")
    report.add_argument("--wall-budget", type=float, default=25.0, metavar="PCT",
                        help="trend: warn when a run is more than PCT%% "
                             "slower than its predecessor (default 25)")
    report.add_argument("--rss-budget", type=float, default=25.0, metavar="PCT",
                        help="trend: warn when a run peaks more than PCT%% "
                             "above its predecessor (default 25)")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""Partition-parallel execution: shards, routers, and the sharded simulator.

The sharded execution layer splits a run over contiguous slices of the
topology's node-index range (see DESIGN.md "Sharded execution invariants"):

* :class:`~repro.shard.plan.ShardPlan` — CSR-balanced contiguous partition
  plus the cut-edge routing table, built once from the topology;
* :class:`~repro.shard.router.ShardRouter` — the per-shard transport:
  intra-shard delivery, cut-edge batches, per-round ledger deltas; composes
  with :class:`~repro.faults.transport.FaultyTransport` and any ledger;
* :class:`~repro.shard.sim.ShardedSimulator` — persistent shard workers
  (forked processes, or threads as the portable fallback) each driving the
  existing :class:`~repro.congest.simulator.Simulator` over its slice, with
  results byte-identical to a serial run for any shard count;
* :mod:`~repro.shard.sweep` — the solver-side sharding: the per-edge hashing
  of ``estimate_similarity_on_edges`` fanned over a persistent compute pool,
  which is what ``Network(shards=N)`` / ``--shards N`` accelerates for the
  centralized coloring pipeline.
"""

from repro.shard.plan import ShardPlan, partition_weights
from repro.shard.pool import ShardComputePool, get_pool, shutdown_pool
from repro.shard.router import ShardAborted, ShardChannel, ShardRouter
from repro.shard.sim import ShardedSimulator, make_simulator
from repro.shard.sweep import MIN_SHARDED_WORK, sharded_edge_hashes

__all__ = [
    "ShardPlan",
    "partition_weights",
    "ShardComputePool",
    "get_pool",
    "shutdown_pool",
    "ShardAborted",
    "ShardChannel",
    "ShardRouter",
    "ShardedSimulator",
    "make_simulator",
    "MIN_SHARDED_WORK",
    "sharded_edge_hashes",
]

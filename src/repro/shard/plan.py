"""Contiguous slot partitions and the cut-edge routing table.

A :class:`ShardPlan` splits a :class:`~repro.congest.topology.Topology`'s
contiguous node-index range ``[0, n)`` into ``shards`` contiguous slices.
Slices are balanced by *CSR weight* — each slot costs one unit plus its CSR
degree — so a shard's share of the adjacency structure (and therefore of the
per-round delivery and per-edge compute work) is roughly equal, not just its
node count.  Because ``indptr[i] + i`` is strictly increasing, the balanced
boundaries are found by bisection without walking the edge list.

The plan also owns the cut-edge routing table: for every shard, the directed
edges that leave it for another shard, read straight off the existing CSR
arrays (``indptr``/``indices``).  The table is built lazily — the sharded
simulator's hot path only needs the O(1) ``owner`` lookup — and cached, so
diagnostics, tests and the cut-traffic summaries pay the O(m) walk once.

A plan is pure data about the topology: it never influences what a sharded
execution *computes* (any shard count must reproduce the serial bytes), only
how the work is sliced.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.congest.topology import Topology


class ShardPlan:
    """A contiguous, CSR-balanced partition of a topology's slot range."""

    __slots__ = ("topology", "shards", "bounds", "owner", "_cut_table")

    def __init__(self, topology: Topology, shards: int):
        n = topology.number_of_nodes
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        # More shards than nodes would leave empty slices; clamp rather than
        # error so callers can pass a fixed --shards to any workload.
        shards = min(shards, max(1, n))
        self.topology = topology
        self.shards = shards
        indptr = topology.indptr
        # Weight of the prefix [0, i): one unit per slot plus its CSR degree.
        # f(i) = indptr[i] + i is strictly increasing, so each balanced
        # boundary is a single bisection over indptr.
        total = indptr[n] + n if n else 0
        bounds: List[int] = [0]
        for s in range(1, shards):
            target = (total * s) // shards
            # Smallest i with indptr[i] + i >= target.
            lo, hi = bounds[-1], n
            while lo < hi:
                mid = (lo + hi) // 2
                if indptr[mid] + mid < target:
                    lo = mid + 1
                else:
                    hi = mid
            # Keep slices non-empty even on degenerate weight distributions.
            bounds.append(min(max(lo, bounds[-1] + 1), n - (shards - s)))
        bounds.append(n)
        self.bounds: Tuple[int, ...] = tuple(bounds)
        owner = array("l")
        for s in range(shards):
            owner.extend([s] * (bounds[s + 1] - bounds[s]))
        #: Slot -> shard id, the O(1) routing lookup used per message.
        self.owner = owner
        self._cut_table: Optional[List[List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------ views
    def slot_range(self, shard: int) -> range:
        """The contiguous slot range owned by ``shard``."""
        return range(self.bounds[shard], self.bounds[shard + 1])

    def shard_of_slot(self, slot: int) -> int:
        """Shard owning ``slot`` (bisection over the bounds)."""
        if not 0 <= slot < len(self.owner):
            raise ValueError(f"slot {slot} outside [0, {len(self.owner)})")
        return self.owner[slot]

    def shard_of_node(self, node) -> int:
        """Shard owning ``node`` (via the topology's contiguous index)."""
        return self.owner[self.topology.index_of(node)]

    # --------------------------------------------------------- cut-edge table
    def _build_cut_table(self) -> List[List[Tuple[int, int]]]:
        """One CSR walk: per shard, its outgoing (sender, receiver) cut slots."""
        topology = self.topology
        indptr = topology.indptr
        indices = topology.indices
        owner = self.owner
        table: List[List[Tuple[int, int]]] = [[] for _ in range(self.shards)]
        for i in range(topology.number_of_nodes):
            s = owner[i]
            row = table[s]
            for j in indices[indptr[i]:indptr[i + 1]]:
                if owner[j] != s:
                    row.append((i, j))
        return table

    def cut_edges_of(self, shard: int) -> List[Tuple[int, int]]:
        """Directed cut edges leaving ``shard``: (local slot, remote slot).

        Built once for all shards on first use and cached; each undirected
        cut edge appears once per direction (in its sender's table).
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")
        if self._cut_table is None:
            self._cut_table = self._build_cut_table()
        return self._cut_table[shard]

    def cut_summary(self) -> Dict[str, object]:
        """Shape report: per-shard sizes and cut traffic (for benchmarks/tests)."""
        if self._cut_table is None:
            self._cut_table = self._build_cut_table()
        indptr = self.topology.indptr
        per_shard = []
        for s in range(self.shards):
            lo, hi = self.bounds[s], self.bounds[s + 1]
            per_shard.append({
                "shard": s,
                "nodes": hi - lo,
                "csr_edges": indptr[hi] - indptr[lo],
                "cut_out": len(self._cut_table[s]),
            })
        directed_cut = sum(len(row) for row in self._cut_table)
        return {
            "shards": self.shards,
            "bounds": list(self.bounds),
            "cut_edges": directed_cut // 2,
            "per_shard": per_shard,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ShardPlan(shards={self.shards}, n={self.topology.number_of_nodes}, "
            f"bounds={list(self.bounds)})"
        )


def partition_weights(weights: List[int], shards: int) -> List[int]:
    """Contiguous boundaries splitting ``weights`` into balanced prefix sums.

    The generic helper behind work-chunking in the sharded similarity sweep:
    returns ``bounds`` of length ``shards + 1`` with ``bounds[0] == 0`` and
    ``bounds[-1] == len(weights)``, chosen so each chunk's weight is close to
    ``total / shards``.  Deterministic in its inputs.
    """
    n = len(weights)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(1, n))
    prefix = [0]
    for w in weights:
        prefix.append(prefix[-1] + max(0, int(w)))
    total = prefix[-1]
    bounds = [0]
    for s in range(1, shards):
        target = (total * s) // shards
        cut = bisect_left(prefix, target, lo=bounds[-1], hi=n)
        bounds.append(min(max(cut, bounds[-1] + 1), n - (shards - s)))
    bounds.append(n)
    return bounds

"""The per-shard transport: local delivery plus cut-edge batches.

A :class:`ShardRouter` is the transport a shard worker's
:class:`~repro.congest.simulator.Simulator` runs on.  It owns one shard's
half of a synchronous round:

* validate and size every message the shard's nodes *send* (the identical
  checks and charges the batch/slot backends apply — the router subclasses
  :class:`~repro.congest.transport.BatchTransport` to share them);
* split the sends into intra-shard deliveries and per-destination *cut-edge
  batches* of ``(sender_slot, receiver_slot, payload)`` triples;
* hand the coordinator the shard's ledger delta ``(count, bits, max)`` plus
  the cut batches through its :class:`ShardChannel`, and block until the
  coordinator routes back the cut batches addressed to this shard;
* merge local and remote deliveries **in ascending sender-slot order** —
  shards are contiguous slot ranges, so concatenating source batches in
  shard order reproduces exactly the per-receiver inbox ordering a serial
  run produces (senders step in ascending slot order there too).

The router composes with the fault layer exactly like any backend: a worker
wraps it in :class:`~repro.faults.transport.FaultyTransport`, whose per-edge
decisions are pure functions of ``(master seed, round, sender, receiver)``
and therefore independent of which shard evaluates them.  Fault filtering is
*sender-side*: a message is dropped/corrupted/delayed before it is routed, so
each decision is made exactly once, by the sending shard, with the same
outcome the serial transport computes.

Accounting is sender-side as well (each directed message is charged once, by
its sender's shard), while the fault layer's ``delivered`` counter is
receiver-side (each delivery lands in exactly one shard's exchange result) —
both therefore sum across shards to the serial totals.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.congest.errors import BandwidthExceeded
from repro.congest.message import Message
from repro.congest.topology import Topology
from repro.congest.transport import BatchTransport, _memoized_bits
from repro.congest.columnar import HAVE_NUMPY
from repro.congest.columnar.buffers import PackedEdgeBatch
from repro.metrics.ledger import Ledger
from repro.shard.plan import ShardPlan

Node = Hashable
DirectedEdge = Tuple[Node, Node]

#: One shard's ledger delta for one round: (message_count, total_bits, max_edge_bits).
RoundStats = Tuple[int, int, int]

#: A cut batch: (sender_slot, receiver_slot, unwrapped payload) triples, in
#: the sender shard's send order (ascending sender slot).  With numpy
#: installed the router ships each batch as a
#: :class:`~repro.congest.columnar.buffers.PackedEdgeBatch` — flat slot
#: arrays plus a payload list — which iterates as the same triples.
CutBatch = List[Tuple[int, int, Any]]


class ShardAborted(RuntimeError):
    """Raised inside a worker when the coordinator aborts the run."""


class ShardChannel:
    """One worker's connection to the round coordinator.

    ``exchange_round`` must be called exactly once per communication round by
    the shard's transport; it blocks until every shard has contributed and
    returns the cut batches addressed to this shard, keyed by source shard.
    Implementations exist for pipe-connected worker processes and for
    in-process worker threads (see :mod:`repro.shard.sim`).
    """

    def exchange_round(
        self, label: str, stats: RoundStats, cut: Dict[int, CutBatch]
    ) -> Dict[int, CutBatch]:
        raise NotImplementedError


class ShardRouter(BatchTransport):
    """Transport for one shard of a partitioned round-synchronous run."""

    name = "shard"

    def __init__(self, topology: Topology, mode: str, bandwidth_bits: int,
                 ledger: Ledger, plan: ShardPlan, shard_id: int,
                 channel: ShardChannel):
        super().__init__(topology, mode, bandwidth_bits, ledger)
        if not 0 <= shard_id < plan.shards:
            raise ValueError(f"shard_id {shard_id} outside [0, {plan.shards})")
        self.plan = plan
        self.shard_id = shard_id
        self.channel = channel

    def exchange(self, messages: Mapping[DirectedEdge, Any],
                 label: str = "exchange") -> Dict[DirectedEdge, Any]:
        topology = self.topology
        neighbor_sets = topology.neighbor_sets
        index_of = topology.node_index
        nodes = topology.nodes
        owner = self.plan.owner
        sid = self.shard_id
        size_memo = self._round_memo()
        count = 0
        total_bits = 0
        max_edge_bits = 0
        worst_edge: Optional[DirectedEdge] = None
        local: List[Tuple[DirectedEdge, Any]] = []
        cut: Dict[int, CutBatch] = {}
        for edge, payload in messages.items():
            sender, receiver = edge
            nbrs = neighbor_sets.get(sender)
            if nbrs is None or receiver not in nbrs:
                self._bad_edge(sender, receiver)
            bits = _memoized_bits(payload, size_memo)
            content = payload.content if isinstance(payload, Message) else payload
            count += 1
            total_bits += bits
            if bits > max_edge_bits:
                max_edge_bits = bits
                worst_edge = edge
            dest = owner[index_of[receiver]]
            if dest == sid:
                local.append((edge, content))
            else:
                batch = cut.get(dest)
                if batch is None:
                    batch = cut[dest] = []
                batch.append((index_of[sender], index_of[receiver], content))
        if (
            self.mode == "congest"
            and max_edge_bits > self.bandwidth_bits
            and worst_edge is not None
        ):
            # Raised *before* the channel barrier: the worker loop reports the
            # error and the coordinator aborts every other shard's round.
            raise BandwidthExceeded(
                worst_edge, max_edge_bits, self.bandwidth_bits, label
            )
        if HAVE_NUMPY and cut:
            # Pack each batch's slots into flat int64 arrays before the
            # channel: two array buffers + a payload list pickle far cheaper
            # than one boxed tuple per cut edge, and the receiving loop is
            # agnostic — it iterates (sender_slot, receiver_slot, payload)
            # triples either way.
            cut = {
                dest: PackedEdgeBatch.from_triples(batch)
                for dest, batch in cut.items()
            }
        incoming = self.channel.exchange_round(
            label, (count, total_bits, max_edge_bits), cut
        )
        # The worker-local ledger records the shard's own delta.  Its running
        # totals are partial by construction; what the sharded execution
        # shares with the serial run is the *clock* (one record per global
        # round — crash schedules and delay slots count on it) while the
        # coordinator's master ledger records the merged global round.
        self.ledger.record_round(label, count, total_bits, max_edge_bits)
        delivered: Dict[DirectedEdge, Any] = {}
        for src in range(self.plan.shards):
            if src == sid:
                for edge, content in local:
                    delivered[edge] = content
            else:
                batch = incoming.get(src)
                if batch:
                    for s_slot, r_slot, content in batch:
                        delivered[(nodes[s_slot], nodes[r_slot])] = content
        return delivered

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        # Expand exactly like the reference backends (sender-major, neighbor
        # order) and run the expansion through the sharded exchange; the
        # round barrier happens once, inside it.
        neighbors = self.topology.neighbors
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            nbrs = neighbors(sender)
            if senders_only_to is not None and sender in senders_only_to:
                for receiver in senders_only_to[sender]:
                    if receiver not in nbrs:
                        self._bad_edge(sender, receiver)
                    messages[(sender, receiver)] = payload
            else:
                for receiver in nbrs:
                    messages[(sender, receiver)] = payload
        return self._inboxes(self.exchange(messages, label=label))

    def exchange_chunked(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange-chunked",
    ) -> Dict[DirectedEdge, Any]:
        raise NotImplementedError(
            "chunked primitives are not routed across shards; the sharded "
            "simulator only drives exchange/broadcast rounds"
        )

    def charge_silent_round(self, label: str = "silent") -> None:
        raise NotImplementedError(
            "charge_silent_round is a solver-driver primitive; the sharded "
            "simulator coordinates exactly one exchange barrier per round "
            "(a node program that must stay synchronised simply sends "
            "nothing, which costs the same empty round)"
        )

"""Partition-parallel execution of node programs: the ``ShardedSimulator``.

One coordinator drives ``k`` shard workers, each running the **existing**
:class:`~repro.congest.simulator.Simulator` over its contiguous slice of the
topology (``Simulator(slots=...)``) on a :class:`~repro.shard.router
.ShardRouter` transport.  Workers are persistent for the whole run — shard
state (states, contexts, rngs, inboxes) is built once per worker, and each
global round exchanges only cut-edge message batches and per-shard ledger
deltas with the coordinator.

Two worker runtimes share one protocol:

* ``workers="fork"`` (default where available) — forked OS processes.  The
  graph, topology and program are inherited copy-on-write, so nothing big is
  ever pickled; workers call ``gc.freeze()`` after building their shard so
  the inherited heap is exempt from their garbage collector.
* ``workers="thread"`` — in-process threads, used as the portable fallback
  and for deterministic debugging.  Identical bytes by construction: the
  protocol, ordering rules and RNG streams do not depend on the runtime.

Round protocol (all messages are small tuples):

1. coordinator → all workers: ``("step", label)``;
2. each worker either runs ``Simulator.step`` — whose ``exchange`` emits
   ``("round", label, stats, cut_batches)`` and blocks — or, with no active
   node, reports ``("skipped", active_count)``;
3. if at least one shard exchanged, the coordinator tells skipped workers to
   ``("absorb", label)`` (an empty exchange: their ledger clock ticks and
   cut-edge mail addressed to them is still counted and delivered), merges
   the per-shard deltas into **one master-ledger record** (``Σcount``,
   ``Σbits``, ``max``), and routes every cut batch to its destination via
   ``("deliver", {source_shard: batch})``;
4. workers finish their ``step`` and report ``("stepped", active_count)``.

Active reports are per-shard *counts* of non-halted nodes (their truthiness
gives the old boolean semantics); the coordinator sums them for the
tracer's active/owned diagnostics.

If *no* shard exchanged, the round never happened — exactly the serial
semantics, where ``Simulator.step`` returns ``False`` without touching the
ledger once every node has halted (including halts forced by a crash
schedule this very round).

Determinism (see DESIGN.md "Sharded execution invariants"): per-node RNG
streams are derived per node, never from execution order; per-receiver inbox
ordering is ascending sender slot, which concatenating contiguous-shard
batches in shard order reproduces exactly; fault decisions are pure
functions of (master seed, round, edge) evaluated sender-side.  The merged
ledgers, outputs, states, fault counters and halting behavior are therefore
byte-identical to a serial run for any shard count and either runtime.
"""

from __future__ import annotations

import gc
import multiprocessing
import pickle
import queue
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.network import Network
from repro.congest.simulator import SimulationResult, Simulator
from repro.congest.program import NodeProgram
from repro.faults.transport import FaultyTransport
from repro.metrics.ledger import Ledger
from repro.shard.plan import ShardPlan
from repro.shard.router import CutBatch, ShardAborted, ShardChannel, ShardRouter

__all__ = ["ShardedSimulator", "make_simulator"]

_JOIN_TIMEOUT_S = 10.0


# --------------------------------------------------------------------------- #
# Worker-side endpoints and channels
# --------------------------------------------------------------------------- #

class _PipeEndpoint:
    """Worker side of a process pipe."""

    def __init__(self, conn):
        self.conn = conn

    def send(self, msg: tuple) -> None:
        self.conn.send(msg)

    def recv(self) -> tuple:
        return self.conn.recv()


class _QueueEndpoint:
    """Worker side of a thread channel (a pair of queues)."""

    def __init__(self, inbox: "queue.Queue", outbox: "queue.Queue"):
        self.inbox = inbox
        self.outbox = outbox

    def send(self, msg: tuple) -> None:
        self.outbox.put(msg)

    def recv(self) -> tuple:
        return self.inbox.get()


class _EndpointChannel(ShardChannel):
    """The :class:`ShardChannel` a worker's router talks through."""

    def __init__(self, endpoint):
        self.endpoint = endpoint

    def exchange_round(
        self, label: str, stats: Tuple[int, int, int], cut: Dict[int, CutBatch]
    ) -> Dict[int, CutBatch]:
        self.endpoint.send(("round", label, stats, cut))
        msg = self.endpoint.recv()
        if msg[0] == "deliver":
            return msg[1]
        if msg[0] in ("abort", "stop"):
            raise ShardAborted("coordinator aborted the run")
        raise RuntimeError(f"unexpected coordinator message {msg[0]!r} mid-round")


def _ship_exception(exc: BaseException) -> tuple:
    """Encode an exception so the coordinator can re-raise it faithfully.

    Custom constructors (e.g. ``BandwidthExceeded(edge, bits, budget,
    label)``) do not survive the default exception pickling, so the class,
    message and attribute dict travel separately and the coordinator rebuilds
    the instance without calling ``__init__``.  Unpicklable classes or
    attributes degrade to a ``RuntimeError`` carrying the original repr.
    """
    try:
        payload = (type(exc), str(exc), dict(exc.__dict__))
        pickle.dumps(payload)
        return ("rebuild", payload)
    except Exception:
        return ("repr", f"{type(exc).__name__}: {exc}")


def _unship_exception(shipped: tuple) -> BaseException:
    kind, payload = shipped
    if kind == "rebuild":
        cls, message, attrs = payload
        try:
            exc = cls.__new__(cls)
            Exception.__init__(exc, message)
            exc.__dict__.update(attrs)
            return exc
        except Exception:
            return RuntimeError(f"{cls.__name__}: {message}")
    return RuntimeError(payload)


def _round_digest(network) -> Optional[tuple]:
    """Drain the worker network's digest collector for the round, if any."""
    take = getattr(network.tracer, "take_round_digest", None)
    return None if take is None else take()


def _worker_loop(endpoint, build) -> None:
    """Serve one shard for the lifetime of a run (both runtimes share this)."""
    try:
        sim, network = build(_EndpointChannel(endpoint))
    except BaseException as exc:  # noqa: BLE001 - must reach the coordinator
        endpoint.send(("error", _ship_exception(exc)))
        return
    endpoint.send(("ready", sim.active_count))
    while True:
        msg = endpoint.recv()
        kind = msg[0]
        try:
            if kind == "step":
                before = network.ledger.rounds
                if sim.has_active:
                    sim.step(label=msg[1])
                if network.ledger.rounds == before:
                    # No exchange happened (no active nodes, or this round's
                    # crashes emptied the shard): let the coordinator decide
                    # whether the global round executes at all.
                    endpoint.send(("skipped", sim.active_count))
                else:
                    endpoint.send(("stepped", sim.active_count,
                                   _round_digest(network)))
            elif kind == "absorb":
                # Another shard exchanged this round: participate with an
                # empty send so the clock, fault schedule and cut-edge
                # deliveries addressed here stay in lockstep.
                network.exchange({}, label=msg[1])
                collector = network.tracer
                if (getattr(collector, "take_round_digest", None) is not None
                        and collector.wants_state):
                    # An absorbed shard ran no step, so the simulator's own
                    # post-step state hook never fired — but its frozen
                    # states are still part of the global round digest.
                    collector.note_state(sim.state_digest_items())
                endpoint.send(("stepped", sim.active_count,
                               _round_digest(network)))
            elif kind == "finish":
                stats = getattr(network.transport, "fault_stats", None)
                endpoint.send(("result", (
                    sim.finish_outputs(), dict(sim.states),
                    None if stats is None else stats.as_dict(),
                )))
            elif kind == "abort" or kind == "stop":
                return
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown coordinator command {kind!r}")
        except ShardAborted:
            return
        except BaseException as exc:  # noqa: BLE001 - must reach the coordinator
            endpoint.send(("error", _ship_exception(exc)))


# --------------------------------------------------------------------------- #
# Coordinator-side worker handles
# --------------------------------------------------------------------------- #

class _ProcessHandle:
    def __init__(self, ctx, target):
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=target, args=(_PipeEndpoint(child_conn),), daemon=True
        )
        self.process.start()
        child_conn.close()

    def send(self, msg: tuple) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            pass  # a dead worker is reported at the next recv

    def recv(self) -> tuple:
        try:
            return self.conn.recv()
        except EOFError:
            return ("error", ("repr", "shard worker process died unexpectedly"))

    def shutdown(self) -> None:
        self.send(("stop",))
        self.process.join(timeout=_JOIN_TIMEOUT_S)
        if self.process.is_alive():  # pragma: no cover - hung-worker safety net
            self.process.terminate()
            self.process.join(timeout=_JOIN_TIMEOUT_S)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - double shutdown after an abort
            pass


class _ThreadHandle:
    def __init__(self, target):
        self.to_worker: "queue.Queue" = queue.Queue()
        self.from_worker: "queue.Queue" = queue.Queue()
        self.thread = threading.Thread(
            target=target,
            args=(_QueueEndpoint(self.to_worker, self.from_worker),),
            daemon=True,
        )
        self.thread.start()

    def send(self, msg: tuple) -> None:
        self.to_worker.put(msg)

    def recv(self) -> tuple:
        return self.from_worker.get()

    def shutdown(self) -> None:
        self.to_worker.put(("stop",))
        self.thread.join(timeout=_JOIN_TIMEOUT_S)


# --------------------------------------------------------------------------- #
# The sharded simulator
# --------------------------------------------------------------------------- #

class ShardedSimulator:
    """Drive a :class:`NodeProgram` across persistent shard workers.

    Same contract as :class:`~repro.congest.simulator.Simulator` —
    ``run(max_rounds, label)`` returns an identical
    :class:`SimulationResult`, the master ``network.ledger`` receives one
    merged record per round, and fault counters land on the master
    transport — for any ``shards`` count and either worker runtime.

    ``network`` supplies the topology, mode, budget, ledger kind and fault
    configuration; its own transport never carries a round (each worker
    routes through its :class:`ShardRouter`).  In ``"fork"`` mode the
    per-node ``outputs`` and ``states`` must be picklable to return to the
    coordinator; programs must keep all per-node state in ``ctx.state`` (the
    program object itself is not shared back across workers).
    """

    def __init__(self, network: Network, program: NodeProgram, seed: int = 0,
                 shards: int = 2, workers: Optional[str] = None):
        self.network = network
        self.program = program
        self.seed = seed
        self.plan = ShardPlan(network.topology, shards)
        self.shards = self.plan.shards
        if workers is None:
            workers = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                       else "thread")
        if workers not in ("fork", "thread"):
            raise ValueError(f"workers must be 'fork' or 'thread', got {workers!r}")
        self.workers = workers
        transport = network.transport
        self._fault_plan = getattr(transport, "fault_plan", None)
        self._fault_seed = getattr(transport, "fault_seed", 0)
        if self._fault_plan is not None and network.ledger.rounds:
            # Every fault decision — drop/corrupt draws as much as crash and
            # delay schedules — is keyed on the ledger clock, and the
            # shard-local clocks start at zero.
            raise ValueError(
                "fault plans count on the ledger clock; run the sharded "
                "simulator on a network whose ledger has not recorded "
                "rounds yet (shard-local clocks start at zero)"
            )

    # ----------------------------------------------------------------- workers
    def _build_shard(self, shard_id: int, channel: ShardChannel):
        """Construct one shard's network + simulator (runs in the worker)."""
        network = self.network
        ledger: Ledger = type(network.ledger)()
        router = ShardRouter(
            network.topology, network.mode, network.bandwidth_bits, ledger,
            self.plan, shard_id, channel,
        )
        transport = router
        if self._fault_plan is not None:
            # The master budget is already throttled (make_transport applied
            # the plan's factor at construction), so wrap without re-scaling.
            transport = FaultyTransport(router, self._fault_plan,
                                        seed=self._fault_seed)
        collector = None
        master_tracer = network.tracer
        if master_tracer.wants_payloads or master_tracer.wants_state:
            # The master digest tracer stays in the coordinator; each worker
            # accumulates its shard's payload/state contributions locally and
            # ships them back with every ``stepped`` reply (sum-merged by the
            # coordinator, so the sharded chain equals the serial one).
            from repro.obs.forensics.tracer import ShardDigestCollector

            collector = ShardDigestCollector(
                wants_payloads=master_tracer.wants_payloads,
                wants_state=master_tracer.wants_state,
            )
        shard_net = Network(network.graph, mode=network.mode, backend=transport,
                            tracer=collector)
        sim = Simulator(shard_net, self.program, seed=self.seed,
                        slots=self.plan.slot_range(shard_id))
        if self.workers == "fork":
            # The forked heap (graph, topology, program, shard state) is
            # effectively immutable for the run; exempting it from the
            # collector keeps per-round garbage scans small and avoids
            # copy-on-write unsharing from GC flag updates.
            gc.freeze()
        return sim, shard_net

    def _spawn(self) -> List[Any]:
        handles: List[Any] = []
        for shard_id in range(self.shards):
            def target(endpoint, shard_id=shard_id):
                _worker_loop(endpoint,
                             lambda ch: self._build_shard(shard_id, ch))
            if self.workers == "fork":
                handles.append(_ProcessHandle(
                    multiprocessing.get_context("fork"), target))
            else:
                handles.append(_ThreadHandle(target))
        return handles

    def _abort(self, handles: List[Any], shipped: tuple) -> None:
        for handle in handles:
            handle.send(("abort",))
        for handle in handles:
            handle.shutdown()
        raise _unship_exception(shipped)

    # --------------------------------------------------------------------- run
    def run(self, max_rounds: int = 10_000, label: Optional[str] = None) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` rounds have elapsed."""
        resolved = label or type(self.program).__name__
        tracer = self.network.tracer
        handles = self._spawn()
        try:
            active: List[int] = []
            for handle in handles:
                msg = handle.recv()
                if msg[0] == "error":
                    self._abort(handles, msg[1])
                active.append(msg[1])
            executed = 0
            while executed < max_rounds and any(active):
                for handle in handles:
                    handle.send(("step", resolved))
                first: List[tuple] = []
                for handle in handles:
                    msg = handle.recv()
                    if msg[0] == "error":
                        self._abort(handles, msg[1])
                    first.append(msg)
                if not any(msg[0] == "round" for msg in first):
                    # Every shard drained this round (voluntary halts from a
                    # previous round, or crashes applied just now): the round
                    # never executes, matching the serial driver.
                    for i, msg in enumerate(first):
                        active[i] = msg[1]
                    break
                for i, msg in enumerate(first):
                    if msg[0] == "skipped":
                        handles[i].send(("absorb", resolved))
                        follow = handles[i].recv()
                        if follow[0] == "error":
                            self._abort(handles, follow[1])
                        first[i] = follow
                round_label = first[0][1]
                total_count = total_bits = max_bits = 0
                incoming: List[Dict[int, CutBatch]] = [dict() for _ in handles]
                for src, msg in enumerate(first):
                    _, _, stats, cut = msg
                    total_count += stats[0]
                    total_bits += stats[1]
                    if stats[2] > max_bits:
                        max_bits = stats[2]
                    for dest, batch in cut.items():
                        incoming[dest][src] = batch
                for dest, handle in enumerate(handles):
                    handle.send(("deliver", incoming[dest]))
                stepped: List[tuple] = []
                for i, handle in enumerate(handles):
                    msg = handle.recv()
                    if msg[0] == "error":
                        self._abort(handles, msg[1])
                    active[i] = msg[1]
                    stepped.append(msg)
                if tracer.enabled:
                    # Observation only: per-shard deltas of the round just
                    # merged, the shard-boundary message count the
                    # coordinator relayed, and the summed post-round active
                    # count.  Set before record_round so the observer sees
                    # them on this round's event.
                    cut_messages = sum(
                        len(batch)
                        for batches in incoming
                        for batch in batches.values()
                    )
                    tracer.note_shards([msg[2] for msg in first],
                                       cut_messages=cut_messages)
                    tracer.note_nodes(sum(active),
                                      self.network.number_of_nodes)
                self.network.ledger.record_round(
                    round_label, total_count, total_bits, max_bits
                )
                if tracer.wants_payloads or tracer.wants_state:
                    # After record_round: the digest tracer attaches shard
                    # parts to the round the observer just opened.  Handle
                    # order == shard order, deterministically.
                    parts = [msg[2] for msg in stepped
                             if len(msg) > 2 and msg[2] is not None]
                    if parts:
                        tracer.note_shard_digests(parts)
                executed += 1
            outputs: Dict[Any, Any] = {}
            states: Dict[Any, Any] = {}
            fault_totals: Optional[Dict[str, int]] = None
            for handle in handles:
                handle.send(("finish",))
            for handle in handles:
                msg = handle.recv()
                if msg[0] == "error":
                    self._abort(handles, msg[1])
                shard_outputs, shard_states, shard_faults = msg[1]
                outputs.update(shard_outputs)
                states.update(shard_states)
                if shard_faults is not None:
                    if fault_totals is None:
                        fault_totals = dict.fromkeys(shard_faults, 0)
                    for key, value in shard_faults.items():
                        if key == "crashed_nodes":
                            # Every shard tracks the full (global) crash
                            # schedule; the counts agree, so merging is max,
                            # not sum.
                            fault_totals[key] = max(fault_totals[key], value)
                        else:
                            fault_totals[key] = fault_totals[key] + value
            if fault_totals is not None:
                master_stats = getattr(self.network.transport, "fault_stats", None)
                if master_stats is not None:
                    master_stats.delivered_messages = fault_totals.get(
                        "delivered_messages", 0)
                    master_stats.dropped_messages = fault_totals.get(
                        "dropped_messages", 0)
                    master_stats.corrupted_messages = fault_totals.get(
                        "corrupted_messages", 0)
                    master_stats.crashed_nodes = fault_totals.get(
                        "crashed_nodes", 0)
            return SimulationResult(
                rounds=executed,
                outputs=outputs,
                states=states,
                halted=not any(active),
            )
        finally:
            for handle in handles:
                handle.shutdown()


def make_simulator(network: Network, program: NodeProgram, seed: int = 0,
                   shards: int = 1, workers: Optional[str] = None):
    """Build the right driver for ``shards``: serial below 2, sharded above."""
    if shards <= 1:
        return Simulator(network, program, seed=seed)
    return ShardedSimulator(network, program, seed=seed, shards=shards,
                            workers=workers)

"""A persistent pool of forked compute workers for sharded sweeps.

The solver-side sharding (:mod:`repro.shard.sweep`) fans per-edge hashing
chunks out to worker processes.  Workers are *persistent per process*: the
first sharded sweep forks them, later sweeps (and later trials in the same
process) reuse them, and an ``atexit`` hook tears them down — matching the
"ship state once, then exchange batches" design of the sharded simulator.
Workers are forked before any task data exists, so their copy-on-write
footprint is the interpreter plus imported modules; every task ships exactly
the chunk it needs and returns a picklable result.

Tasks are looked up in a registry by name (the registry is import-time
state, identical in parent and child), so the pool never pickles callables.
Where ``fork`` is unavailable the pool runs chunks inline in the calling
process — bit-identical results, no parallelism — keeping every caller
portable without a second code path.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional  # noqa: F401

__all__ = ["ShardComputePool", "get_pool", "register_task", "shutdown_pool"]

_TASKS: Dict[str, Callable[[Any], Any]] = {}


def register_task(name: str, fn: Callable[[Any], Any]) -> None:
    """Register a chunk-compute function under a stable name (import time)."""
    _TASKS[name] = fn


def _compute_loop(conn) -> None:
    gc.freeze()  # the inherited heap is read-only for this worker
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        if msg[0] == "stop":
            return
        _, name, payload = msg
        try:
            conn.send(("ok", _TASKS[name](payload)))
        except BaseException as exc:  # noqa: BLE001 - must reach the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class ShardComputePool:
    """Fixed-size pool of forked workers executing registered chunk tasks."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.pid = os.getpid()
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for _ in range(size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_compute_loop, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def run(self, name: str, chunks: List[Any]) -> List[Any]:
        """Run ``chunks`` through task ``name``; results in chunk order.

        Dispatch is in waves of ``size``: every chunk of a wave is sent (one
        per worker) before its results are read, so workers compute
        concurrently, and a wave's results are fully drained before the next
        wave's sends.  The drain is what makes ``len(chunks) > size`` safe —
        pipe buffers are small (~64 KiB) against multi-MB chunk payloads, so
        queueing a second chunk at a busy worker could otherwise deadlock:
        the parent blocked sending into a full pipe, the worker blocked
        sending a result nobody is reading yet.
        """
        results: List[Any] = []
        for start in range(0, len(chunks), self.size):
            wave = chunks[start:start + self.size]
            sent = 0
            dispatch_error: Optional[BaseException] = None
            for i, payload in enumerate(wave):
                try:
                    self._conns[i].send(("task", name, payload))
                except BaseException as exc:  # e.g. an unpicklable payload
                    dispatch_error = exc
                    break
                sent += 1
            # Drain every reply the wave owes before raising anything: an
            # unread result left in a persistent pipe would be mismatched to
            # the *next* run()'s tasks — silently wrong results, not an
            # error.  Only a dead worker (EOF) makes draining impossible, and
            # then the pool is condemned so get_pool() rebuilds it.
            task_error: Optional[str] = None
            for i in range(sent):
                try:
                    kind, value = self._conns[i].recv()
                except EOFError:
                    self.shutdown()
                    raise RuntimeError("shard compute worker died unexpectedly")
                if kind == "error":
                    task_error = task_error or value
                else:
                    results.append(value)
            if dispatch_error is not None:
                raise RuntimeError(
                    f"failed to ship a chunk to a shard compute worker: "
                    f"{dispatch_error}"
                ) from dispatch_error
            if task_error is not None:
                raise RuntimeError(f"shard compute worker failed: {task_error}")
        return results

    def shutdown(self) -> None:
        # A shut-down pool can serve nothing: zero the size so get_pool()
        # replaces rather than reuses it.
        self.size = 0
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung-worker safety net
                proc.terminate()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._conns = []
        self._procs = []


class _InlinePool:
    """Fork-free fallback: compute chunks in the calling process."""

    size = 1
    pid = None

    def run(self, name: str, chunks: List[Any]) -> List[Any]:
        return [_TASKS[name](payload) for payload in chunks]

    def shutdown(self) -> None:  # pragma: no cover - nothing to release
        pass


_pool: Optional[Any] = None


def get_pool(size: int):
    """Return this process's compute pool with at least ``size`` workers.

    Lazily created; grown (by replacement) when a caller asks for more
    workers; rebuilt after a fork of the *calling* process (the inherited
    pool's pipes belong to the parent).
    """
    global _pool
    if "fork" not in multiprocessing.get_all_start_methods():
        return _InlinePool()
    if _pool is not None and (_pool.pid != os.getpid() or _pool.size < size):
        if _pool.pid == os.getpid():
            _pool.shutdown()
        _pool = None
    if _pool is None:
        _pool = ShardComputePool(size)
    return _pool


def shutdown_pool() -> None:
    """Tear down this process's pool (no-op when none exists)."""
    global _pool
    if _pool is not None and _pool.pid == os.getpid():
        _pool.shutdown()
    _pool = None


atexit.register(shutdown_pool)

"""Sharded execution of the per-edge similarity hashing sweep.

``EstimateSimilarity`` on all edges at once —
:func:`repro.sampling.similarity.estimate_similarity_on_edges` — is the
dominant compute of every coloring run (the ACD buddy test, sparsity
estimation, triangle/4-cycle detection all run it).  Its per-edge work is a
pure function: hash both endpoints' scaled element keys with the family
member the edge drew and keep the low unique values.  That makes it the
natural unit to shard for the *centralized* solvers: the network accounting
(two ``exchange_chunked`` rounds) stays in the calling process, untouched,
while the hashing fans out over the persistent compute pool.

Chunking is contiguous over the edge list, balanced by estimated key-hash
work (``k * (|keys_u| + |keys_v|)`` per edge) via
:func:`repro.shard.plan.partition_weights`.  Each chunk ships exactly the
base keys its endpoints need; workers rebuild the hash member from
``(family_seed, index, lam)`` — the member is a pure function of those — and
scale keys locally with the same ``combine_part_keys`` identity the serial
sweep uses.  Results are keyed by edge position, so the merge is
order-independent and the sweep's outputs are bit-identical to the serial
loop for any shard count.

Sweeps below :data:`MIN_SHARDED_WORK` estimated hash operations run serially
— the decision depends only on the workload, never on machine state, so a
given run shards (or not) deterministically.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.hashing.keys import combine_part_keys
from repro.hashing.representative import RepresentativeHashFunction
from repro.shard.plan import partition_weights
from repro.shard.pool import get_pool, register_task

__all__ = ["MIN_SHARDED_WORK", "sharded_edge_hashes"]

Node = Hashable
Edge = Tuple[Node, Node]

#: Minimum estimated key-hash operations before a sweep is worth sharding.
#: Below this the chunk shipping would cost more than the hashing.
MIN_SHARDED_WORK = 100_000

#: One edge's task: (position, u, v, family_seed, index, lam, sigma, k).
EdgeTask = Tuple[int, Node, Node, int, int, int, int, int]


def _scaled_keys(base: Sequence[int], k: int) -> Sequence[int]:
    """Scale base element keys by ``k`` — the serial sweep's identity:
    ``element_key((x, j)) == combine_part_keys((element_key(x), j))``."""
    if k <= 1:
        return base
    return [combine_part_keys((part, j)) for part in base for j in range(k)]


def _edge_hash_chunk(payload) -> List[Tuple[int, Set[int], Set[int]]]:
    """Compute (position, hashes_u, hashes_v) for one chunk of edge tasks."""
    tasks, keys_table = payload
    scaled: Dict[Tuple[Node, int], List[int]] = {}
    out: List[Tuple[int, Set[int], Set[int]]] = []
    for pos, u, v, family_seed, index, lam, sigma, k in tasks:
        fn = RepresentativeHashFunction(family_seed, index, lam)
        keys_u = scaled.get((u, k))
        if keys_u is None:
            keys_u = scaled[(u, k)] = _scaled_keys(keys_table[u], k)
        keys_v = scaled.get((v, k))
        if keys_v is None:
            keys_v = scaled[(v, k)] = _scaled_keys(keys_table[v], k)
        out.append((pos, fn.low_unique_values(keys_u, sigma),
                    fn.low_unique_values(keys_v, sigma)))
    return out


register_task("similarity_edge_hashes", _edge_hash_chunk)


def sharded_edge_hashes(
    tasks: Sequence[EdgeTask],
    base_keys: Dict[Node, List[int]],
    shards: int,
) -> List[Tuple[Set[int], Set[int]]]:
    """Fan the per-edge hashing of a sweep out over the compute pool.

    ``tasks`` describe the edges in sweep order; ``base_keys`` maps every
    endpoint to its (unscaled) element keys.  Returns ``(hashes_u,
    hashes_v)`` per task, in task order — exactly what the serial loop's two
    ``low_unique_values`` calls produce.
    """
    weights = [
        k * (len(base_keys[u]) + len(base_keys[v]))
        for _, u, v, _, _, _, _, k in tasks
    ]
    bounds = partition_weights(weights, shards)
    chunks = []
    for s in range(len(bounds) - 1):
        part = list(tasks[bounds[s]:bounds[s + 1]])
        # Keys are 64-bit unsigned by construction (element_key/mix64), so
        # each chunk ships its key table as packed arrays — a memcpy to
        # pickle — rather than lists of boxed ints.
        table: Dict[Node, array] = {}
        for _, u, v, _, _, _, _, _ in part:
            if u not in table:
                table[u] = array("Q", base_keys[u])
            if v not in table:
                table[v] = array("Q", base_keys[v])
        chunks.append((part, table))
    results: List[Tuple[Set[int], Set[int]]] = [None] * len(tasks)  # type: ignore[list-item]
    for chunk_result in get_pool(len(chunks)).run("similarity_edge_hashes", chunks):
        for pos, hashes_u, hashes_v in chunk_result:
            results[pos] = (hashes_u, hashes_v)
    return results


def estimated_work(tasks: Sequence[EdgeTask],
                   base_keys: Dict[Node, List[int]]) -> int:
    """Total estimated key-hash operations of a sweep (the sharding gate)."""
    return sum(
        k * (len(base_keys[u]) + len(base_keys[v]))
        for _, u, v, _, _, _, _, k in tasks
    )

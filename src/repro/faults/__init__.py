"""Fault injection: deterministic, seeded network perturbations.

The subsystem has three small parts, layered strictly below the experiment
orchestration and above the transport engine:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (drop / corrupt / crash /
  throttle / delay as pure data) and the :class:`FaultStats` counters;
* :mod:`repro.faults.corruption` — the deterministic bit-flip operators;
* :mod:`repro.faults.transport` — :class:`FaultyTransport`, the decorator
  that perturbs any backend behind the normal ``Transport`` interface.

Entry points: pass ``faults=`` (a plan or a params mapping) to
:class:`~repro.congest.network.Network`, the ``solve_*`` drivers, a
:class:`~repro.experiments.spec.ScenarioSpec`, or ``repro suite run
--faults drop=0.01,corrupt=1e-4``.  A ``None``/empty plan is a true no-op:
the transport is never wrapped and the run is byte-identical to a fault-free
one.  See DESIGN.md ("Fault model & determinism invariants").
"""

from repro.faults.corruption import corrupt_bits, corrupt_payload
from repro.faults.plan import FAULT_PARAM_KEYS, FaultPlan, FaultStats
from repro.faults.transport import FaultyTransport

__all__ = [
    "FAULT_PARAM_KEYS",
    "FaultPlan",
    "FaultStats",
    "FaultyTransport",
    "corrupt_bits",
    "corrupt_payload",
]

"""Deterministic bit-level corruption of message payloads.

The corruption model is "every bit of the payload flips independently with
probability ``rate``", matching the noise the paper's ``[3b, b, b/2]`` code
(Algorithm 6, :mod:`repro.hashing.ecc`) is built to tolerate.  Payload types
map to bits the same way :func:`repro.congest.bandwidth.payload_bits`
charges them:

* booleans flip;
* integers flip within their binary length (the corrupted value never needs
  more bits than the original, so corruption cannot create a bandwidth
  violation);
* strings flip within each character's low byte;
* containers (tuples/lists/sets/dicts) corrupt their members recursively;
* a :class:`~repro.congest.message.Message` corrupts its content but keeps
  its declared bit charge and label;
* ``None``/floats (diagnostics-only payloads) and unknown ``Message``
  contents pass through untouched.

All decisions come from a counter-based splitmix64 stream seeded per
(edge, round), never from a shared ``random.Random`` — so the outcome is
independent of dict iteration order, backend, and process.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.congest.message import Message
from repro.hashing.keys import element_key, mix64

#: Uniform-in-[0,1) resolution: the top 53 bits of a mixed 64-bit value.
_F53 = float(1 << 53)

_ITEM_SALT = 0x17E4
_CONTENT_SALT = 0x4D5E


def to_unit(mixed: int) -> float:
    """Map a mixed 64-bit value to [0, 1) — the one bits-to-uniform rule.

    Shared by every fault decision (drop draws in the transport, bit flips
    here), so the whole layer keeps a single RNG discipline.
    """
    return (mixed >> 11) / _F53


def _uniform(seed: int, index: int) -> float:
    """The ``index``-th uniform draw of the stream rooted at ``seed``."""
    return to_unit(mix64(seed, index))


def corrupt_bits(bits: Sequence[int], rate: float, seed: int) -> Tuple[Tuple[int, ...], int]:
    """Flip each 0/1 entry independently with probability ``rate``.

    Returns ``(corrupted, flips)``.  This is the operator the ECC property
    tests drive directly: it is exactly what the fault layer applies to
    indicator bitstrings on the wire.
    """
    out = []
    flips = 0
    for index, bit in enumerate(bits):
        if _uniform(seed, index) < rate:
            out.append(1 - bit)
            flips += 1
        else:
            out.append(bit)
    return tuple(out), flips


def _corrupt_int(value: int, rate: float, seed: int) -> Tuple[int, int]:
    """Flip bits of ``value`` within its binary length (sign untouched)."""
    magnitude = abs(value)
    width = max(1, magnitude.bit_length())
    mask = 0
    flips = 0
    for position in range(width):
        if _uniform(seed, position) < rate:
            mask |= 1 << position
            flips += 1
    if not flips:
        return value, 0
    corrupted = magnitude ^ mask
    return (-corrupted if value < 0 else corrupted), flips


def _corrupt_str(value: str, rate: float, seed: int) -> Tuple[str, int]:
    """Flip bits within each character's low byte (8 bits/char, as charged)."""
    chars = []
    flips = 0
    for index, char in enumerate(value):
        mask = 0
        char_seed = mix64(seed, index, _ITEM_SALT)
        for position in range(8):
            if _uniform(char_seed, position) < rate:
                mask |= 1 << position
        if mask:
            flips += bin(mask).count("1")
            chars.append(chr(ord(char) ^ mask))
        else:
            chars.append(char)
    return "".join(chars), flips


def corrupt_payload(payload: Any, rate: float, seed: int) -> Tuple[Any, int]:
    """Corrupt ``payload`` at per-bit ``rate``; returns ``(payload', flips)``.

    The original object is never mutated — hot paths share payload objects
    across receivers, so corruption always builds a fresh value (or returns
    the original untouched when no bit flipped).
    """
    if isinstance(payload, Message):
        content, flips = corrupt_payload(payload.content, rate,
                                         mix64(seed, _CONTENT_SALT))
        if not flips:
            return payload, 0
        return Message(content=content, bits=payload.bits, label=payload.label), flips
    if isinstance(payload, bool):
        if _uniform(seed, 0) < rate:
            return (not payload), 1
        return payload, 0
    if isinstance(payload, int):
        return _corrupt_int(payload, rate, seed)
    if isinstance(payload, str):
        return _corrupt_str(payload, rate, seed)
    if isinstance(payload, (tuple, list)):
        items = []
        flips = 0
        for index, item in enumerate(payload):
            corrupted, item_flips = corrupt_payload(
                item, rate, mix64(seed, index, _ITEM_SALT)
            )
            items.append(corrupted)
            flips += item_flips
        if not flips:
            return payload, 0
        return type(payload)(items), flips
    if isinstance(payload, (set, frozenset)):
        members = []
        flips = 0
        # Enumerate in a canonical order so member sub-seeds do not depend
        # on set iteration order (which varies with insertion history).
        for index, item in enumerate(sorted(payload, key=repr)):
            corrupted, item_flips = corrupt_payload(
                item, rate, mix64(seed, index, _ITEM_SALT)
            )
            members.append(corrupted)
            flips += item_flips
        if not flips:
            return payload, 0
        return type(payload)(members), flips
    if isinstance(payload, dict):
        items = {}
        flips = 0
        # Sub-seed by the *key*, not the enumeration index: equal dicts with
        # different insertion histories must corrupt identically.
        for key, value in payload.items():
            corrupted, item_flips = corrupt_payload(
                value, rate, mix64(seed, element_key(key), _ITEM_SALT)
            )
            items[key] = corrupted
            flips += item_flips
        if not flips:
            return payload, 0
        return items, flips
    # None, floats, and exotic Message contents: nothing sensible to flip.
    return payload, 0

"""A transport decorator that perturbs delivery deterministically.

:class:`FaultyTransport` wraps any concrete backend (dict / batch / slot)
behind the same :class:`~repro.congest.transport.Transport` interface and
applies a :class:`~repro.faults.plan.FaultPlan` to every communication
primitive.  Design invariants (enforced by the fault-layer test suite):

* **Backend-independent bytes.**  Every fault decision is a pure function of
  ``(master_seed, round_id, sender, receiver)`` via ``mix64`` over stable
  element keys — never of dict iteration order or backend internals.  The
  wrapped round is materialised as one per-edge message mapping and handed
  to the inner backend's ``exchange``, whose ledger records are already
  proven identical across backends, so a fixed (seed, plan) pair yields
  byte-identical ledgers, inboxes and stats on dict, batch and slot.
* **Failures are absences, not exceptions.**  A dropped, crashed-away or
  still-delayed message is simply missing from the result mapping / inbox;
  programs never see a fault-layer exception.  Protocol violations (illegal
  edges, oversized payloads under the throttled budget) still raise exactly
  as they would on a fault-free transport.
* **Round numbering is the ledger's.**  The crash schedule and delay slots
  count communication rounds as recorded by the shared ledger, which is the
  one clock all backends and the :class:`~repro.congest.simulator.Simulator`
  agree on.

The no-fault path never reaches this module: ``make_transport`` only wraps
when the plan is non-trivial, so fault-free runs stay byte-identical to the
committed baselines by construction.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.congest.bandwidth import payload_bits
from repro.congest.errors import BandwidthExceeded, ProtocolError
from repro.congest.message import Message
from repro.congest.transport import Transport
from repro.faults.corruption import corrupt_payload, to_unit
from repro.faults.plan import FaultPlan, FaultStats
from repro.hashing.keys import element_key, mix64

Node = Hashable
DirectedEdge = Tuple[Node, Node]

_DROP_SALT = 0xD809
_CORRUPT_SALT = 0xC0BB


class FaultyTransport(Transport):
    """Wrap ``inner`` so that ``plan`` perturbs every round it carries."""

    def __init__(self, inner: Transport, plan: FaultPlan, seed: int = 0):
        if isinstance(inner, FaultyTransport):
            raise ValueError("refusing to stack fault layers: unwrap first")
        if plan.is_noop:
            raise ValueError(
                "a no-op FaultPlan must not be wrapped (make_transport "
                "returns the bare backend for it)"
            )
        super().__init__(inner.topology, inner.mode, inner.bandwidth_bits,
                         inner.ledger)
        self.inner = inner
        self.fault_plan = plan
        self.fault_seed = int(seed)
        self.fault_stats = FaultStats()
        self.name = f"{inner.name}+faults"
        self._master = plan.master_seed(seed)
        self._crash_schedule: List[Tuple[int, Tuple[Node, ...]]] = sorted(
            plan.crash.items()
        )
        self._crash_pos = 0
        self._crashed: set = set()
        #: In-flight delayed messages as (due_round, edge, payload), FIFO.
        self._pending: List[Tuple[int, DirectedEdge, Any]] = []

    # ------------------------------------------------------------ fault engine
    def _begin_round(self) -> int:
        """Advance the crash schedule to the round about to execute."""
        round_id = self.ledger.rounds
        schedule = self._crash_schedule
        pos = self._crash_pos
        while pos < len(schedule) and schedule[pos][0] <= round_id:
            self._crashed.update(schedule[pos][1])
            pos += 1
        if pos != self._crash_pos:
            self._crash_pos = pos
            self.fault_stats.crashed_nodes = len(self._crashed)
        return round_id

    def _check_removed(self, sender: Node, receiver: Node, payload: Any,
                       label: str, validate: bool, enforce_budget: bool) -> None:
        """Re-create the clean transport's checks for a message we remove.

        A dropped or crash-suppressed message must still raise for an
        illegal edge and (outside the chunked primitives, which legitimately
        stream oversized payloads) for a budget violation — protocol errors
        never become silently survivable just because the fault seed
        happened to remove the offending message.
        """
        if validate:
            self._validate_edge(sender, receiver)
        if enforce_budget:
            bits = payload.bits if isinstance(payload, Message) else \
                payload_bits(payload)
            if bits > self.bandwidth_bits:
                raise BandwidthExceeded((sender, receiver), bits,
                                        self.bandwidth_bits, label)

    def _filter(
        self,
        messages: Mapping[DirectedEdge, Any],
        round_id: int,
        label: str,
        validate: bool,
        enforce_budget: bool,
    ) -> Dict[DirectedEdge, Any]:
        """Apply crash/drop/corrupt/delay to one round's messages.

        Only the messages the fault layer *removes* are checked here
        (edge legality when ``validate`` is set, budget when
        ``enforce_budget`` is set) — survivors get the inner backend's own
        delivery checks, so the common no-fault-hit message is validated
        exactly once and protocol violations raise exactly as they would on
        a clean transport.
        """
        plan = self.fault_plan
        master = self._master
        crashed = self._crashed
        stats = self.fault_stats
        drop = plan.drop
        corrupt = plan.corrupt
        delay = plan.delay
        surviving: Dict[DirectedEdge, Any] = {}
        for edge, payload in messages.items():
            sender, receiver = edge
            if crashed and (sender in crashed or receiver in crashed):
                self._check_removed(sender, receiver, payload, label,
                                    validate, enforce_budget)
                stats.dropped_messages += 1
                continue
            if drop or corrupt:
                sender_key = element_key(sender)
                receiver_key = element_key(receiver)
            if drop:
                draw = mix64(master, round_id, sender_key, receiver_key,
                             _DROP_SALT)
                if to_unit(draw) < drop:
                    self._check_removed(sender, receiver, payload, label,
                                        validate, enforce_budget)
                    stats.dropped_messages += 1
                    continue
            if corrupt:
                edge_seed = mix64(master, round_id, sender_key, receiver_key,
                                  _CORRUPT_SALT)
                payload, flips = corrupt_payload(payload, corrupt, edge_seed)
                if flips:
                    stats.corrupted_messages += 1
            slots = delay.get(edge, 0) if delay else 0
            if slots:
                # A delayed message is checked at send time, like the clean
                # transport would; delivery re-checks are harmless.
                self._check_removed(sender, receiver, payload, label,
                                    validate, enforce_budget)
                self._pending.append((round_id + slots, edge, payload))
            else:
                surviving[edge] = payload
        if self._pending:
            self._deliver_due(surviving, round_id)
        return surviving

    def _deliver_due(self, surviving: Dict[DirectedEdge, Any], round_id: int) -> None:
        """Merge delayed messages whose due round has arrived (FIFO order)."""
        crashed = self._crashed
        still: List[Tuple[int, DirectedEdge, Any]] = []
        for due, edge, payload in self._pending:
            if due > round_id:
                still.append((due, edge, payload))
            elif crashed and (edge[0] in crashed or edge[1] in crashed):
                self.fault_stats.dropped_messages += 1
            elif edge in surviving:
                # The edge carries a fresh message this round; the late one
                # waits one more round rather than silently clobbering it.
                still.append((round_id + 1, edge, payload))
            else:
                surviving[edge] = payload
        self._pending = still

    # -------------------------------------------------------------- primitives
    def exchange(self, messages: Mapping[DirectedEdge, Any],
                 label: str = "exchange") -> Dict[DirectedEdge, Any]:
        round_id = self._begin_round()
        surviving = self._filter(messages, round_id, label, validate=True,
                                 enforce_budget=self.mode == "congest")
        delivered = self.inner.exchange(surviving, label=label)
        self.fault_stats.delivered_messages += len(delivered)
        return delivered

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        # Expand to per-edge messages here: corruption is per edge, so a
        # broadcast under faults is no longer "one payload object to all".
        # The expansion order (sender-major, topology neighbor order) is the
        # same one every backend uses, and delivery goes through the inner
        # backend's exchange, keeping ledgers and inboxes backend-identical.
        round_id = self._begin_round()
        neighbors = self.topology.neighbors
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            nbrs = neighbors(sender)  # raises the canonical error if unknown
            if senders_only_to is not None and sender in senders_only_to:
                for receiver in senders_only_to[sender]:
                    if receiver not in nbrs:
                        raise ProtocolError(
                            f"{sender!r} cannot broadcast to non-neighbour "
                            f"{receiver!r}"
                        )
                    messages[(sender, receiver)] = payload
            else:
                for receiver in nbrs:
                    messages[(sender, receiver)] = payload
        surviving = self._filter(messages, round_id, label, validate=False,
                                 enforce_budget=self.mode == "congest")
        delivered = self.inner.exchange(surviving, label=label)
        self.fault_stats.delivered_messages += len(delivered)
        return self._inboxes(delivered)

    def exchange_chunked(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange-chunked",
    ) -> Dict[DirectedEdge, Any]:
        round_id = self._begin_round()
        # Chunked streams legitimately exceed the per-round budget, so
        # removed messages skip the budget re-check here.
        surviving = self._filter(messages, round_id, label, validate=True,
                                 enforce_budget=False)
        delivered = self.inner.exchange_chunked(surviving, label=label)
        self.fault_stats.delivered_messages += len(delivered)
        return delivered

    # broadcast_chunked is inherited: the base expansion feeds our faulted
    # exchange_chunked, which is exactly the per-edge semantics we want.

    def charge_silent_round(self, label: str = "silent") -> None:
        self._begin_round()
        self.inner.charge_silent_round(label=label)

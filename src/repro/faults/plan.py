"""Declarative fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is pure configuration — probabilities, schedules and
factors — with no randomness of its own.  The randomness comes in when a
:class:`~repro.faults.transport.FaultyTransport` combines the plan's
canonical encoding with a caller-supplied seed through the repo-wide
:func:`~repro.utils.rng.derive_seed` chain, so a fixed ``(seed, plan)`` pair
perturbs a run identically across transport backends, worker counts and
processes.

The five perturbation axes (all optional; an all-default plan is a no-op and
is never even wrapped around a transport):

* ``drop`` — every directed message is lost independently with this
  probability.  Receivers simply see a missing inbox entry.
* ``corrupt`` — every bit of every delivered payload flips independently
  with this probability (see :mod:`repro.faults.corruption` for how payload
  types map to bits).
* ``crash`` — ``{round: nodes}``: from communication round ``round`` on (as
  counted by the ledger), the listed nodes neither send nor receive; the
  :class:`~repro.congest.simulator.Simulator` also drops them from its
  active set.
* ``throttle`` — multiplies the per-edge bandwidth budget (``0.25`` leaves a
  quarter of the usual bits per round), modelling sub-``O(log n)`` CONGEST.
* ``delay`` — ``{(sender, receiver): slots}``: messages on that directed
  edge arrive ``slots`` communication rounds late.  Delays apply to
  in-budget messages; combining a per-edge delay with *chunked* oversized
  payloads on the same edge is unsupported (the late delivery would land in
  a budget-enforced round).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.utils.rng import derive_seed

Node = Hashable
DirectedEdge = Tuple[Node, Node]

#: The keys :meth:`FaultPlan.from_params` accepts (the spec-level fault axes).
FAULT_PARAM_KEYS: Tuple[str, ...] = ("corrupt", "crash", "delay", "drop", "throttle")


def _as_probability(name: str, value: object) -> float:
    prob = float(value)
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return prob


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic perturbation recipe for a network run."""

    drop: float = 0.0
    corrupt: float = 0.0
    crash: Mapping[int, Tuple[Node, ...]] = field(default_factory=dict)
    throttle: float = 1.0
    delay: Mapping[DirectedEdge, int] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "drop", _as_probability("drop", self.drop))
        object.__setattr__(self, "corrupt", _as_probability("corrupt", self.corrupt))
        throttle = float(self.throttle)
        if not 0.0 < throttle <= 1.0:
            raise ValueError(
                f"throttle must be a bandwidth factor in (0, 1], got {self.throttle!r}"
            )
        object.__setattr__(self, "throttle", throttle)
        crash: Dict[int, Tuple[Node, ...]] = {}
        for round_id, nodes in dict(self.crash).items():
            r = int(round_id)
            if r < 0:
                raise ValueError(f"crash round must be >= 0, got {round_id!r}")
            if isinstance(nodes, (str, bytes)) or not hasattr(nodes, "__iter__"):
                raise ValueError(
                    f"crash[{round_id!r}] must be an iterable of nodes, got {nodes!r}"
                )
            crash[r] = tuple(sorted(nodes, key=repr))
        object.__setattr__(self, "crash", crash)
        delay: Dict[DirectedEdge, int] = {}
        for edge, slots in dict(self.delay).items():
            if not (isinstance(edge, (tuple, list)) and len(edge) == 2):
                raise ValueError(
                    f"delay keys must be (sender, receiver) pairs, got {edge!r}"
                )
            slots = int(slots)
            if slots < 0:
                raise ValueError(f"delay[{edge!r}] must be >= 0, got {slots}")
            if slots:
                delay[(edge[0], edge[1])] = slots
        object.__setattr__(self, "delay", delay)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "FaultPlan":
        """Build a plan from a spec-level mapping, rejecting unknown keys."""
        unknown = sorted(set(params) - set(FAULT_PARAM_KEYS))
        if unknown:
            raise ValueError(
                f"unknown fault parameter(s) {unknown} "
                f"(allowed: {', '.join(FAULT_PARAM_KEYS)})"
            )
        kwargs = dict(params)
        if "crash" in kwargs and not isinstance(kwargs["crash"], Mapping):
            raise ValueError(
                f"crash must be a {{round: [nodes]}} mapping, got {kwargs['crash']!r}"
            )
        if "delay" in kwargs and not isinstance(kwargs["delay"], Mapping):
            raise ValueError(
                f"delay must be a {{(sender, receiver): slots}} mapping, "
                f"got {kwargs['delay']!r}"
            )
        return cls(**kwargs)

    @classmethod
    def coerce(cls, value: object) -> Optional["FaultPlan"]:
        """Normalise ``None`` / plan / params-mapping to a plan or ``None``.

        A no-op plan collapses to ``None`` so callers can treat "no faults"
        and "an empty plan" identically — both leave the transport unwrapped
        and the run byte-identical to a fault-free one.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            plan = value
        elif isinstance(value, Mapping):
            plan = cls.from_params(value)
        else:
            raise TypeError(
                f"faults must be a FaultPlan or a parameter mapping, got {value!r}"
            )
        return None if plan.is_noop else plan

    # ----------------------------------------------------------------- queries
    @property
    def is_noop(self) -> bool:
        """True when the plan perturbs nothing (all axes at their defaults)."""
        return (
            self.drop == 0.0
            and self.corrupt == 0.0
            and not self.crash
            and self.throttle == 1.0
            and not self.delay
        )

    def canonical(self) -> Dict[str, Any]:
        """JSON-round-trip-stable description (feeds seeds and artifacts).

        Only non-default axes appear, keys are strings, and collections are
        sorted, so the same plan always encodes to the same bytes whether it
        was built in-process or parsed back out of a committed artifact.
        """
        out: Dict[str, Any] = {}
        if self.drop:
            out["drop"] = self.drop
        if self.corrupt:
            out["corrupt"] = self.corrupt
        if self.crash:
            out["crash"] = {str(r): list(nodes) for r, nodes in sorted(self.crash.items())}
        if self.throttle != 1.0:
            out["throttle"] = self.throttle
        if self.delay:
            # A [sender, receiver, slots] triple list, not an "a->b" joined
            # string: string node labels could contain the separator and
            # collapse distinct plans onto one encoding (hence one seed).
            out["delay"] = [
                [edge[0], edge[1], slots]
                for edge, slots in sorted(self.delay.items(), key=repr)
            ]
        return out

    def canonical_string(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"), default=str)

    def master_seed(self, seed: int) -> int:
        """The fault RNG root for this (seed, plan) pair — the derive_seed chain."""
        return derive_seed("faults", int(seed), self.canonical_string())

    def throttled_bandwidth(self, bandwidth_bits: int) -> int:
        """Apply the throttle factor to a per-edge budget (at least 1 bit)."""
        if self.throttle == 1.0:
            return int(bandwidth_bits)
        return max(1, int(math.floor(bandwidth_bits * self.throttle)))

    def crashed_by(self, round_id: int) -> frozenset:
        """All nodes whose crash round is ``<= round_id``."""
        if not self.crash:
            return frozenset()
        dead = set()
        for r, nodes in self.crash.items():
            if r <= round_id:
                dead.update(nodes)
        return frozenset(dead)


@dataclass
class FaultStats:
    """Deterministic outcome counters kept by a :class:`FaultyTransport`."""

    delivered_messages: int = 0
    dropped_messages: int = 0
    corrupted_messages: int = 0
    crashed_nodes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "delivered_messages": self.delivered_messages,
            "dropped_messages": self.dropped_messages,
            "corrupted_messages": self.corrupted_messages,
            "crashed_nodes": self.crashed_nodes,
        }

#!/usr/bin/env python
"""Quickstart: color a random graph with the CONGEST D1LC pipeline.

Run with::

    python examples/quickstart.py

The script builds a random graph, solves (deg+1)-coloring with the paper's
pipeline under CONGEST bandwidth accounting, validates the result, and prints
the resource usage (rounds, bits, bandwidth ceiling).
"""

from __future__ import annotations

import networkx as nx

from repro import ColoringParameters, solve_d1c
from repro.metrics import format_table


def main() -> None:
    graph = nx.gnp_random_graph(200, 0.08, seed=42)
    print(f"graph: n={graph.number_of_nodes()}, m={graph.number_of_edges()}, "
          f"Δ={max(d for _, d in graph.degree())}")

    result = solve_d1c(graph, params=ColoringParameters.small(seed=7))

    print(f"coloring valid: {result.is_valid}")
    print(f"colors used:    {len(set(result.coloring.values()))}")
    rows = [
        {"metric": "CONGEST rounds (total)", "value": result.rounds},
        {"metric": "rounds (randomized part)", "value": result.randomized_rounds},
        {"metric": "nodes finished by fallback", "value": result.fallback_nodes},
        {"metric": "bandwidth budget (bits/edge/round)", "value": result.bandwidth_bits},
        {"metric": "max bits on an edge in one round", "value": result.max_edge_bits},
        {"metric": "total bits exchanged", "value": result.total_bits},
    ]
    print(format_table(rows, title="\nresource usage"))
    print("\nrounds by phase:")
    for phase, rounds in sorted(result.rounds_by_phase.items()):
        print(f"  {phase:>10}: {rounds}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Local triangle detection with EstimateSimilarity (Theorem 2).

A sparse "network traffic" graph is planted with a few dense communities;
edges inside a community participate in many triangles.  Every edge runs the
O(ε^-4)-round detector and decides locally whether it is triangle-rich — no
global coordinator, no edge ever learns more than the hashed samples of its
endpoints' neighbourhoods.
"""

from __future__ import annotations

from repro.congest import Network
from repro.graphs.generators import triangle_rich_graph
from repro.metrics import format_table
from repro.sampling import detect_triangle_rich_edges
from repro.sampling.triangles import true_triangle_count


def main() -> None:
    planted = triangle_rich_graph(
        n=200, background_p=0.02, planted_cliques=4, clique_size=16, seed=5
    )
    graph = planted.graph
    network = Network(graph)
    eps = 0.3
    result = detect_triangle_rich_edges(network, eps=eps, seed=6)

    # Score the detector against the exact triangle counts.
    hits = misses = false_alarms = quiet = 0
    for u, v in graph.edges():
        count = true_triangle_count(network, u, v)
        flagged = result.is_flagged(u, v)
        if count >= 2 * result.threshold:
            hits += flagged
            misses += not flagged
        elif count <= 0.25 * result.threshold:
            false_alarms += flagged
            quiet += not flagged

    rows = [
        {"metric": "edges", "value": graph.number_of_edges()},
        {"metric": "detection threshold (εΔ triangles)", "value": round(result.threshold, 1)},
        {"metric": "rich edges correctly flagged", "value": hits},
        {"metric": "rich edges missed", "value": misses},
        {"metric": "sparse edges incorrectly flagged", "value": false_alarms},
        {"metric": "CONGEST rounds", "value": result.rounds_used},
        {"metric": "max bits per edge per round", "value": network.ledger.max_edge_bits},
    ]
    print(format_table(rows, title="local triangle detection"))


if __name__ == "__main__":
    main()

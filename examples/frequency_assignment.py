#!/usr/bin/env python
"""List-coloring with a huge color space: frequency assignment (Appendix D.3).

Scenario: every radio tower may only use frequencies from its own licensed
list, and frequencies are identified by 200-bit descriptors — far more than a
CONGEST message can carry.  The paper's answer (Appendix D.3) is to never send
a frequency verbatim: each node announces a universal hash function once, and
neighbours afterwards refer to frequencies by their hash value.

The script builds such an instance, solves it, and shows that no message ever
exceeded the O(log n) bandwidth even though the colors themselves are 200 bits.
"""

from __future__ import annotations

from repro import ColoringParameters, solve_d1lc
from repro.graphs import gnp_graph, huge_color_space_lists
from repro.metrics import format_table


def main() -> None:
    graph = gnp_graph(150, 0.07, seed=9)
    lists = huge_color_space_lists(graph, color_space_bits=200, seed=10)
    sample_color = next(iter(next(iter(lists.values()))))
    print(f"towers: {graph.number_of_nodes()}, interference edges: {graph.number_of_edges()}")
    print(f"one frequency descriptor needs {sample_color.bit_length()} bits "
          "(far above the per-message budget)")

    result = solve_d1lc(graph, lists, params=ColoringParameters.small(seed=21))

    rows = [
        {"metric": "assignment valid", "value": result.is_valid},
        {"metric": "bandwidth budget (bits)", "value": result.bandwidth_bits},
        {"metric": "largest single message (bits)", "value": result.max_edge_bits},
        {"metric": "CONGEST rounds", "value": result.rounds},
    ]
    print(format_table(rows, title="\nfrequency assignment"))
    assert result.max_edge_bits <= result.bandwidth_bits, (
        "a message exceeded the CONGEST budget — the large-color machinery failed"
    )
    print("\nevery frequency was communicated through per-node universal hashing; "
          "no message exceeded the bandwidth budget.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Coloring a social-network-like graph: D1LC vs the classic random-trial baseline.

Power-law graphs are the motivating workload for (degree+1)-list-coloring:
hub nodes have huge degrees while most nodes are small, so giving everyone a
(Δ+1)-sized palette is wasteful and the per-node ``deg+1`` lists of D1LC are
the natural formulation.  The script colors such a graph with

* the paper's CONGEST pipeline (``solve_d1lc``), and
* the classical Johansson-style random trials (``O(log n)`` rounds),

and compares rounds and communication.  The interesting comparison is the
*shape*: the pipeline's round count is dominated by constant-size phases while
the baseline pays a full synchronous round per retry.
"""

from __future__ import annotations

from repro import ColoringParameters, solve_d1lc
from repro.baselines import johansson_coloring
from repro.graphs import degree_plus_one_lists, power_law_graph
from repro.metrics import format_table


def main() -> None:
    graph = power_law_graph(300, attachment=4, triangle_prob=0.4, seed=3)
    lists = degree_plus_one_lists(graph, seed=4)
    delta = max(d for _, d in graph.degree())
    print(f"power-law graph: n={graph.number_of_nodes()}, m={graph.number_of_edges()}, Δ={delta}")

    pipeline = solve_d1lc(graph, lists, params=ColoringParameters.small(seed=11))
    baseline = johansson_coloring(graph, lists, seed=11)

    rows = []
    for name, result in (("paper pipeline (CONGEST)", pipeline), ("random trials baseline", baseline)):
        rows.append({
            "algorithm": name,
            "valid": result.is_valid,
            "rounds": result.rounds,
            "total_bits": result.total_bits,
            "max_bits_per_edge_round": result.max_edge_bits,
        })
    print(format_table(rows, title="\ncomparison"))

    print("\npipeline rounds by phase:")
    for phase, rounds in sorted(pipeline.rounds_by_phase.items()):
        print(f"  {phase:>10}: {rounds}")


if __name__ == "__main__":
    main()

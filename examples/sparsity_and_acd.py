#!/usr/bin/env python
"""Sparsity estimation and almost-clique decomposition on a planted instance.

The script demonstrates the two structural primitives the coloring pipeline is
built on:

1. ``EstimateSparsity`` — every node estimates how many edges are missing from
   its neighbourhood using O(1) rounds of hashed samples (Lemmas 4–5);
2. ``compute_acd`` — the O(1)-round almost-clique decomposition (Section 4.2),
   compared against the planted ground truth and validated against the four
   properties of Definition 6.
"""

from __future__ import annotations

from repro.congest import Network
from repro.core import ColoringParameters
from repro.core.acd import compute_acd
from repro.graphs import exact_local_sparsity, planted_almost_cliques, validate_acd
from repro.metrics import format_table
from repro.sampling import estimate_local_sparsity


def main() -> None:
    planted = planted_almost_cliques(
        num_cliques=4, clique_size=18, num_sparse=25, sparse_degree=5, seed=12
    )
    graph = planted.graph
    network = Network(graph)
    params = ColoringParameters.small(seed=13)

    # --- sparsity estimation -------------------------------------------------
    estimates = estimate_local_sparsity(network, eps=0.4, seed=14)
    rows = []
    clique_node = next(iter(planted.cliques[0]))
    sparse_node = next(iter(planted.sparse_nodes))
    for label, node in (("clique member", clique_node), ("background node", sparse_node)):
        rows.append({
            "node": f"{label} ({node})",
            "degree": graph.degree(node),
            "true local sparsity": round(exact_local_sparsity(graph, node), 2),
            "estimated": round(estimates[node], 2),
            "reliable": estimates.reliable[node],
        })
    print(format_table(rows, title="local sparsity estimation (Lemma 5)"))
    print(f"rounds used: {estimates.rounds_used}\n")

    # --- almost-clique decomposition -----------------------------------------
    acd = compute_acd(network, params)
    print(format_table([acd.partition_summary()], title="almost-clique decomposition"))
    recovered = 0
    for members in acd.cliques.values():
        overlap = max(len(members & truth) / len(truth) for truth in planted.cliques)
        recovered += overlap >= 0.8
    print(f"planted cliques recovered: {recovered}/{len(planted.cliques)}")

    report = validate_acd(
        graph,
        sparse_nodes=acd.sparse_nodes,
        uneven_nodes=acd.uneven_nodes,
        almost_cliques=list(acd.cliques.values()),
        eps_sparse=params.sparsity_eps,
        eps_clique=2 * params.acd_eps,
    )
    violations = {k: len(v) for k, v in report.items()}
    print(format_table([violations], title="\nDefinition 6 violation counts (0 everywhere = valid)"))
    print(f"ACD rounds used: {acd.rounds_used}")


if __name__ == "__main__":
    main()
